#include "scenario/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>

#include <memory>

#include "net/context.hpp"
#include "net/device.hpp"
#include "net/flow.hpp"
#include "net/link.hpp"
#include "net/loss.hpp"
#include "net/topology.hpp"
#include "scenario/callback_registry.hpp"
#include "scenario/harness.hpp"
#include "sim/codec.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/span.hpp"
#include "tcp/fluid.hpp"

namespace scidmz::scenario {

namespace {

/// The fixed header every snapshot carries after the magic: clock state,
/// sequence numbering, and the pending-event counts the restore validates
/// its accounting against.
struct ClockHeader {
  sim::SimTime now = sim::SimTime::zero();
  std::uint64_t executed = 0;
  std::uint64_t nextSeq = 0;
  std::uint64_t pending = 0;
  std::uint64_t daemons = 0;

  void serialize(sim::Codec& c) {
    sim::codecTime(c, now);
    c.vu64(executed);
    c.vu64(nextSeq);
    c.vu64(pending);
    c.vu64(daemons);
  }
};

/// The component walk shared by save and restore. Section order is load-
/// bearing on the read side: RNG/CTX are plain counters, TOP re-arms
/// in-flight datapath packets, TCP rebuilds server connections (which
/// re-register telemetry samplers), FLU overlays the fluid aggregates, and
/// TEL comes LAST so its overlay squashes every counter/series bump the
/// earlier sections' re-registrations made.
std::uint64_t serializeComponents(sim::Codec& c, sim::Rng& rng, net::Context& ctx,
                                  net::Topology& topo) {
  std::uint64_t claimed = 0;
  rng.serialize(c);
  ctx.serialize(c);
  std::uint64_t deviceCount = topo.devices().size();
  c.vu64(deviceCount);
  if (!c.writing() && deviceCount != topo.devices().size()) {
    c.reader().markFailed();
    return claimed;
  }
  for (const auto& device : topo.devices()) {
    claimed += device->serialize(c);
    if (!c.ok()) return claimed;
  }
  std::uint64_t linkCount = topo.links().size();
  c.vu64(linkCount);
  if (!c.writing() && linkCount != topo.links().size()) {
    c.reader().markFailed();
    return claimed;
  }
  for (const auto& link : topo.links()) {
    claimed += link->serialize(c);
    if (!c.ok()) return claimed;
  }
  claimed += net::flowFactory(ctx).serialize(c);
  if (!c.ok()) return claimed;
  claimed += ctx.extension<tcp::FluidEngine>().serialize(c);
  if (!c.ok()) return claimed;
  // Named scenario closures (samplers, watchdogs, arrival processes): the
  // registry claims their pending timers and re-arms them by name against
  // whatever the rebuild registered.
  claimed += ctx.extension<CallbackRegistry>().serialize(c, ctx.sim());
  if (!c.ok()) return claimed;
  // SPAN overlay: replaces whatever spans the rebuild's flow construction
  // just opened with the snapshotting run's full span table, so a traced
  // run and its restored continuation export one coherent trace. Kept
  // before TEL so the telemetry overlay stays last.
  {
    telemetry::Tracer& tracer = ctx.extension<telemetry::Tracer>();
    bool traced = tracer.enabled();
    c.b(traced);
    if (traced) tracer.serialize(c);
  }
  if (!c.ok()) return claimed;
  claimed += ctx.telemetry().serialize(c);
  return claimed;
}

std::string countMismatch(const char* what, std::uint64_t got, std::uint64_t want) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "snapshot refused: %s (%llu vs %llu)", what,
                static_cast<unsigned long long>(got), static_cast<unsigned long long>(want));
  return buf;
}

}  // namespace

SnapshotBlob saveSnapshot(sim::Simulator& sim, sim::Rng& rng, net::Context& ctx,
                          net::Topology& topo) {
  SnapshotBlob out;
  if (!ctx.snapshotsArmed()) {
    out.error =
        "snapshot refused: Context::armSnapshots() was not called before the run, "
        "so in-flight datapath packets were not recorded";
    return out;
  }
  sim::BitWriter w;
  sim::writeMagic(w, kSnapshotMagic);
  sim::Codec c(w);
  ClockHeader clk;
  clk.now = sim.now();
  clk.executed = sim.eventsExecuted();
  clk.nextSeq = sim.scheduledTotal();
  clk.pending = sim.pendingEventCount();
  clk.daemons = sim.pendingDaemonCount();
  {
    const auto cookie = w.beginSection("CLK ");
    clk.serialize(c);
    w.endSection(cookie);
  }
  const auto cookie = w.beginSection("BODY");
  const std::uint64_t claimed = serializeComponents(c, rng, ctx, topo);
  w.endSection(cookie);
  // The self-validation that makes unsupported scenarios refuse instead of
  // silently corrupting: every pending event must have been claimed by
  // exactly one serializable component. Scenario-level closures, firewall
  // inspection pipelines, DTN pumps etc. land here.
  if (claimed != clk.pending) {
    out.error = countMismatch(
        "pending events not owned by serializable components (claimed vs pending)",
        claimed, clk.pending);
    return out;
  }
  out.bytes = w.take();
  return out;
}

bool restoreSnapshot(sim::Simulator& sim, sim::Rng& rng, net::Context& ctx,
                     net::Topology& topo, const std::uint8_t* data, std::size_t size,
                     std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  sim::BitReader r(data, size);
  if (!sim::readMagic(r, kSnapshotMagic)) {
    return fail("restore refused: not a scidmz.snap.v1 snapshot");
  }
  sim::Codec c(r);
  if (r.enterSection("CLK ") == 0 && r.fail()) {
    return fail("restore refused: missing CLK section");
  }
  ClockHeader clk;
  clk.serialize(c);
  if (!c.ok()) return fail("restore refused: truncated CLK section");
  if (r.enterSection("BODY") == 0 && r.fail()) {
    return fail("restore refused: missing BODY section");
  }
  // Point of no return: the target scenario's pending events are dropped
  // and its clock reset. Any failure after this leaves it indeterminate.
  sim.beginRestore(clk.now, clk.executed, clk.nextSeq);
  ctx.telemetry().beginRestore();
  const std::uint64_t claimed = serializeComponents(c, rng, ctx, topo);
  if (!c.ok()) {
    return fail(
        "restore refused: snapshot does not match the rebuilt scenario "
        "(malformed blob, or the rebuild diverged from the snapshotting run)");
  }
  if (claimed != clk.pending) {
    return fail(countMismatch("restored event count does not match the snapshot's",
                              claimed, clk.pending));
  }
  if (sim.pendingEventCount() != clk.pending) {
    return fail(countMismatch("event queue size diverged from the snapshot's",
                              sim.pendingEventCount(), clk.pending));
  }
  if (sim.pendingDaemonCount() != clk.daemons) {
    return fail(countMismatch("daemon accounting diverged from the snapshot's",
                              sim.pendingDaemonCount(), clk.daemons));
  }
  return true;
}

SnapshotBlob saveSnapshot(Scenario& s) {
  return saveSnapshot(s.simulator, s.rng, s.ctx, s.topo);
}

bool restoreSnapshot(Scenario& s, const std::vector<std::uint8_t>& blob, std::string* error) {
  return restoreSnapshot(s.simulator, s.rng, s.ctx, s.topo, blob.data(), blob.size(), error);
}

bool saveSnapshotFile(Scenario& s, const std::string& path, std::string* error) {
  SnapshotBlob blob = saveSnapshot(s);
  if (!blob.ok()) {
    if (error != nullptr) *error = blob.error;
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open snapshot file for writing: " + path;
    return false;
  }
  out.write(reinterpret_cast<const char*>(blob.bytes.data()),
            static_cast<std::streamsize>(blob.bytes.size()));
  if (!out) {
    if (error != nullptr) *error = "short write to snapshot file: " + path;
    return false;
  }
  return true;
}

struct DemoCell::State {
  std::vector<net::FlowPtr> flows;
};

DemoCell::DemoCell() : scenario_(std::make_unique<Scenario>(20260809)), state_(std::make_unique<State>()) {
  Scenario& s = *scenario_;
  s.ctx.armSnapshots();
  telemetry::TelemetryConfig tel;
  tel.sampleEvery = sim::Duration::milliseconds(10);
  tel.ringCapacity = 4096;
  s.ctx.telemetry().enable(tel);

  auto& a = s.topo.addHost("dtn0", net::Address(10, 0, 0, 1));
  auto& sw = s.topo.addSwitch("border");
  auto& b = s.topo.addHost("dtn1", net::Address(10, 0, 0, 2));
  net::LinkParams p;
  p.rate = sim::DataRate::gigabitsPerSecond(1);
  p.delay = sim::Duration::milliseconds(5);
  p.mtu = sim::DataSize::bytes(9000);
  s.topo.connect(a, sw, p);
  net::Link& egress = s.topo.connect(sw, b, p);
  egress.setLossModel(0, std::make_unique<net::PeriodicLoss>(5000));
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = sim::DataSize::mebibytes(8);
  cfg.rcvBuf = sim::DataSize::mebibytes(8);
  cfg.pacing = true;
  const net::FlowFidelity fidelities[2] = {net::FlowFidelity::kPacket,
                                           net::FlowFidelity::kFluid};
  for (int i = 0; i < 2; ++i) {
    net::FlowFactory::Options options;
    options.port = static_cast<std::uint16_t>(5001 + i);
    options.fidelity = fidelities[i];
    options.pinned = true;
    net::FlowPtr flow = net::flowFactory(s.ctx).create(a, b, cfg, options);
    net::FlowHandle& ref = *flow;
    flow->onEstablished = [&ref] { ref.sendData(sim::DataSize::mebibytes(48)); };
    flow->start();
    state_->flows.push_back(std::move(flow));
  }
}

DemoCell::~DemoCell() = default;

std::string DemoCell::table() const {
  Scenario& s = *scenario_;
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf, "t_ns=%lld events=%llu forwarded=%llu\n",
                static_cast<long long>(s.simulator.now().ns()),
                static_cast<unsigned long long>(s.simulator.eventsExecuted()),
                static_cast<unsigned long long>(s.ctx.packetsForwarded()));
  out += buf;
  for (std::size_t i = 0; i < state_->flows.size(); ++i) {
    const auto& flow = state_->flows[i];
    std::snprintf(buf, sizeof buf,
                  "flow%zu fidelity=%s delivered=%llu acked=%llu retx=%llu complete=%d\n", i,
                  net::toString(flow->fidelity()),
                  static_cast<unsigned long long>(flow->deliveredBytes().byteCount()),
                  static_cast<unsigned long long>(flow->ackedBytes().byteCount()),
                  static_cast<unsigned long long>(flow->retransmits()),
                  flow->sendComplete() ? 1 : 0);
    out += buf;
  }
  return out;
}

bool restoreSnapshotFile(Scenario& s, const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open snapshot file: " + path;
    return false;
  }
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return restoreSnapshot(s, blob, error);
}

}  // namespace scidmz::scenario
