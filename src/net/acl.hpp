// Router/switch access control lists.
//
// The paper's security pattern replaces firewall appliances with ACLs
// evaluated in the forwarding plane: filtering by address and port at line
// rate, with no buffering stage to overflow. AclTable is that capability.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"

namespace scidmz::net {

enum class AclAction : std::uint8_t { kPermit, kDeny };

struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;
  [[nodiscard]] constexpr bool contains(std::uint16_t p) const { return p >= lo && p <= hi; }
  static constexpr PortRange any() { return PortRange{}; }
  static constexpr PortRange single(std::uint16_t p) { return PortRange{p, p}; }
};

/// One match-action rule. Unset protocol matches both TCP and UDP.
struct AclRule {
  AclAction action = AclAction::kPermit;
  Prefix src{Address{0}, 0};
  Prefix dst{Address{0}, 0};
  std::optional<Protocol> proto;
  PortRange srcPorts = PortRange::any();
  PortRange dstPorts = PortRange::any();
  std::string comment;

  [[nodiscard]] bool matches(const Packet& p) const {
    if (proto && *proto != p.flow.proto) return false;
    return src.contains(p.flow.src) && dst.contains(p.flow.dst) &&
           srcPorts.contains(p.flow.srcPort) && dstPorts.contains(p.flow.dstPort);
  }
};

/// First-match rule list with a configurable default action. Science DMZ
/// practice: explicit permits for DTN data channels and measurement hosts,
/// default deny.
class AclTable {
 public:
  AclTable() = default;
  explicit AclTable(AclAction defaultAction) : default_(defaultAction) {}

  void append(AclRule rule) { rules_.push_back(std::move(rule)); }
  void clear() { rules_.clear(); }
  void setDefault(AclAction a) { default_ = a; }
  [[nodiscard]] AclAction defaultAction() const { return default_; }
  [[nodiscard]] const std::vector<AclRule>& rules() const { return rules_; }

  [[nodiscard]] bool permits(const Packet& p) const {
    for (const auto& rule : rules_) {
      if (rule.matches(p)) return rule.action == AclAction::kPermit;
    }
    return default_ == AclAction::kPermit;
  }

 private:
  std::vector<AclRule> rules_;
  AclAction default_ = AclAction::kPermit;
};

}  // namespace scidmz::net
