// Byte-bounded drop-tail FIFO — the egress queue model for every interface.
//
// Buffer sizing is the crux of the paper's Section 5: deep-buffered science
// switches absorb TCP bursts and fan-in; cheap LAN switches and firewall
// input stages with shallow buffers drop them.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace scidmz::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  sim::DataSize bytesEnqueued = sim::DataSize::zero();
  sim::DataSize bytesDropped = sim::DataSize::zero();
  sim::DataSize peakDepth = sim::DataSize::zero();
  sim::TimeWeightedMean depthOverTime;

  [[nodiscard]] double dropFraction() const {
    const auto offered = enqueued + dropped;
    return offered == 0 ? 0.0 : static_cast<double>(dropped) / static_cast<double>(offered);
  }
};

class DropTailQueue {
 public:
  explicit DropTailQueue(sim::DataSize capacityBytes) : capacity_(capacityBytes) {}

  /// Attempt to enqueue; returns false (and counts a drop) when the packet
  /// would push the queue past its byte capacity.
  bool tryEnqueue(sim::SimTime now, Packet packet) {
    const auto size = packet.wireSize();
    if (depth_ + size > capacity_) {
      ++stats_.dropped;
      stats_.bytesDropped += size;
      return false;
    }
    depth_ += size;
    ++stats_.enqueued;
    stats_.bytesEnqueued += size;
    if (depth_ > stats_.peakDepth) stats_.peakDepth = depth_;
    stats_.depthOverTime.update(now, static_cast<double>(depth_.byteCount()));
    items_.push_back(std::move(packet));
    return true;
  }

  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) {
    if (items_.empty()) return std::nullopt;
    Packet p = std::move(items_.front());
    items_.pop_front();
    depth_ -= p.wireSize();
    stats_.depthOverTime.update(now, static_cast<double>(depth_.byteCount()));
    return p;
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t packetCount() const { return items_.size(); }
  [[nodiscard]] sim::DataSize depth() const { return depth_; }
  [[nodiscard]] sim::DataSize capacity() const { return capacity_; }
  void setCapacity(sim::DataSize capacity) { capacity_ = capacity; }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }
  void resetStats() { stats_ = QueueStats{}; }

 private:
  sim::DataSize capacity_;
  sim::DataSize depth_ = sim::DataSize::zero();
  std::deque<Packet> items_;
  QueueStats stats_;
};

}  // namespace scidmz::net
