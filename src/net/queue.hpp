// Byte-bounded drop-tail FIFO — the egress queue model for every interface.
//
// Buffer sizing is the crux of the paper's Section 5: deep-buffered science
// switches absorb TCP bursts and fan-in; cheap LAN switches and firewall
// input stages with shallow buffers drop them.
//
// Storage is a power-of-two ring of 16-byte PacketRef handles (grown
// geometrically, never shrunk), replacing the former std::deque<Packet>:
// no per-node allocation, no ~150-byte packet copies on enqueue/dequeue,
// and the whole queue state of a typical port fits in one cache line's
// worth of handles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/codec.hpp"
#include "net/packet_pool.hpp"
#include "sim/codec.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace scidmz::net {

namespace detail {

/// Minimal FIFO ring of PacketRef handles. Capacity is a power of two and
/// doubles when full; slots are reused in place, so steady-state traffic
/// touches the allocator only while the ring is still warming up.
class HandleRing {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(PacketRef ref) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(ref);
    ++size_;
  }

  /// Precondition: !empty().
  [[nodiscard]] PacketRef pop() {
    PacketRef out = std::move(slots_[head_]);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
    return out;
  }

  /// Visit queued packets head-first without consuming them (snapshots).
  template <typename F>
  void forEach(F&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(*slots_[(head_ + i) & (slots_.size() - 1)]);
    }
  }

  /// Drop every queued handle (restore resets queue contents before
  /// re-filling from the snapshot; refs release into the live pool).
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) {
      slots_[(head_ + i) & (slots_.size() - 1)] = PacketRef{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<PacketRef> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<PacketRef> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace detail

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  sim::DataSize bytesEnqueued = sim::DataSize::zero();
  sim::DataSize bytesDropped = sim::DataSize::zero();
  sim::DataSize peakDepth = sim::DataSize::zero();
  sim::TimeWeightedMean depthOverTime;

  [[nodiscard]] double dropFraction() const {
    const auto offered = enqueued + dropped;
    return offered == 0 ? 0.0 : static_cast<double>(dropped) / static_cast<double>(offered);
  }

  void serialize(sim::Codec& c) {
    c.vu64(enqueued);
    c.vu64(dropped);
    sim::codecSize(c, bytesEnqueued);
    sim::codecSize(c, bytesDropped);
    sim::codecSize(c, peakDepth);
    depthOverTime.serialize(c);
  }
};

class DropTailQueue {
 public:
  explicit DropTailQueue(sim::DataSize capacityBytes) : capacity_(capacityBytes) {}

  /// Attempt to enqueue; returns false (and counts a drop) when the packet
  /// would push the queue past its byte capacity. Either way the handle is
  /// consumed — a rejected packet's slot recycles when the ref dies here.
  bool tryEnqueue(sim::SimTime now, PacketRef packet) {
    const auto size = packet->wireSize();
    if (depth_ + size > capacity_) {
      ++stats_.dropped;
      stats_.bytesDropped += size;
      return false;
    }
    depth_ += size;
    ++stats_.enqueued;
    stats_.bytesEnqueued += size;
    if (depth_ > stats_.peakDepth) stats_.peakDepth = depth_;
    stats_.depthOverTime.update(now, static_cast<double>(depth_.byteCount()));
    ring_.push(std::move(packet));
    return true;
  }

  /// Pop the head packet; returns an empty (falsy) ref when idle.
  [[nodiscard]] PacketRef dequeue(sim::SimTime now) {
    if (ring_.empty()) return PacketRef{};
    PacketRef p = ring_.pop();
    depth_ -= p->wireSize();
    stats_.depthOverTime.update(now, static_cast<double>(depth_.byteCount()));
    return p;
  }

  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::size_t packetCount() const { return ring_.size(); }
  [[nodiscard]] sim::DataSize depth() const { return depth_; }

  /// Effective capacity, never below the current depth: shrinking a backlogged
  /// queue used to leave `depth() > capacity()` visible to observers (a >100%
  /// utilisation, nonsensical). Admission still tests against the *requested*
  /// capacity, so the reported value converges to it as the backlog drains.
  [[nodiscard]] sim::DataSize capacity() const {
    return capacity_ < depth_ ? depth_ : capacity_;
  }

  /// Resize the buffer at runtime (the Colorado defect clamps buffers live).
  /// The requested size takes effect immediately for admission — a shrink
  /// below the current depth drops every new arrival until the queue drains
  /// below it, exactly the store-and-forward collapse the defect model needs —
  /// but capacity() clamps to depth() so the invariant `depth <= capacity`
  /// holds for every observer.
  void setCapacity(sim::DataSize capacity) { capacity_ = capacity; }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }
  void resetStats() { stats_ = QueueStats{}; }

  /// Snapshot/restore: capacity, stats, and the queued packets themselves
  /// (head-first, so a restored queue drains in the original order). On
  /// restore the ring is cleared first — restoring twice into the same
  /// queue is deterministic — and packets are re-acquired from `pool`.
  void serialize(sim::Codec& c, PacketPool& pool) {
    sim::codecSize(c, capacity_);
    stats_.serialize(c);
    if (c.writing()) {
      std::uint64_t n = ring_.size();
      c.vu64(n);
      ring_.forEach([&](const Packet& p) {
        Packet copy = p;
        codecPacket(c, copy);
      });
    } else {
      ring_.clear();
      depth_ = sim::DataSize::zero();
      std::uint64_t n = 0;
      c.vu64(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        Packet p;
        codecPacket(c, p);
        depth_ += p.wireSize();
        ring_.push(pool.acquire(std::move(p)));
      }
    }
  }

 private:
  sim::DataSize capacity_;
  sim::DataSize depth_ = sim::DataSize::zero();
  detail::HandleRing ring_;
  QueueStats stats_;
};

}  // namespace scidmz::net
