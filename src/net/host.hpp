// End host: a single-homed device with an address and a protocol demux.
// The TCP stack (src/tcp) and measurement tools (src/perfsonar) register
// themselves as PacketSinks on local ports.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/device.hpp"
#include "net/link.hpp"

namespace scidmz::net {

/// Receiver interface for packets addressed to a bound local port.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void onPacket(const Packet& packet) = 0;
};

class Host : public Device {
 public:
  Host(Context& ctx, std::string name, Address address) : Device(ctx, std::move(name)), address_(address) {}

  [[nodiscard]] Address address() const { return address_; }

  /// MSS usable by transports: path MTU of the attached link minus TCP/IP
  /// overhead. 1460 for standard 1500 MTU, 8960 for 9000 "jumbo frames".
  [[nodiscard]] sim::DataSize mss() const {
    const Interface& nic = interface(0);
    const auto mtu = nic.link() ? nic.link()->mtu() : sim::DataSize::bytes(1500);
    return mtu - kTcpIpHeaderBytes;
  }

  [[nodiscard]] sim::DataRate nicRate() const { return interface(0).rate(); }

  /// Bind a sink to (proto, local port). Overwrites silently — re-binding is
  /// how listening services restart in scenarios.
  void bind(Protocol proto, std::uint16_t port, PacketSink& sink) {
    handlers_[key(proto, port)] = &sink;
  }
  void unbind(Protocol proto, std::uint16_t port) { handlers_.erase(key(proto, port)); }

  /// Ephemeral port allocation for client-side connections.
  [[nodiscard]] std::uint16_t allocatePort() { return next_port_++; }

  /// Transmit an application packet; stamps src address and a fresh id.
  void send(PacketRef packet) {
    packet->flow.src = address_;
    packet->id = ctx_.nextPacketId();
    interface(0).send(std::move(packet));
  }

  /// Value-type convenience overload: moves the packet into a pool slot at
  /// its origination point (the one copy a packet ever pays).
  void send(Packet packet) { send(ctx_.pool().acquire(std::move(packet))); }

  /// Snapshot/restore: device state plus the ephemeral-port counter, so
  /// client connections opened after a restore draw the same source ports
  /// an uninterrupted run would. Sinks re-bind during scenario rebuild.
  std::uint64_t serialize(sim::Codec& c) override {
    const std::uint64_t claimed = Device::serialize(c);
    c.u16(next_port_);
    return claimed;
  }

  void receive(PacketRef packet, Interface& in) override {
    notifyTap(*packet, in);
    ++stats_.rxPackets;
    stats_.rxBytes += packet->wireSize();
    if (packet->flow.dst != address_) {
      ++stats_.dropsOther;  // not ours; hosts do not forward
      return;
    }
    const auto it = handlers_.find(key(packet->flow.proto, packet->flow.dstPort));
    if (it == handlers_.end()) {
      ++stats_.dropsOther;
      return;
    }
    // Sinks borrow the packet; the slot recycles when this frame returns.
    it->second->onPacket(*packet);
  }

 private:
  static constexpr std::uint32_t key(Protocol proto, std::uint16_t port) {
    return (static_cast<std::uint32_t>(proto) << 16) | port;
  }

  Address address_;
  std::unordered_map<std::uint32_t, PacketSink*> handlers_;
  std::uint16_t next_port_ = 10000;
};

}  // namespace scidmz::net
