// The unified flow-creation seam.
//
// Every bulk flow a scenario runs — catalog workloads, DTN streams, apps,
// bwctl probes — is created through net::FlowFactory and driven through the
// fidelity-agnostic FlowHandle interface. The factory is the single place
// where three decisions are made per flow: the model fidelity (full
// per-packet TCP, or the analytic fluid model driven by the CC response
// function), the congestion-control algorithm, and the arena placement of
// the underlying objects.
//
// Fidelity:
//   kPacket — classic tcp::TcpConnection/TcpListener pair; every segment is
//             simulated. The default, and bit-identical to the pre-factory
//             construction paths.
//   kFluid  — tcp::FluidEngine advances the flow's rate analytically on
//             coarse ticks (Mathis/TFRC response function), publishing its
//             aggregate demand onto each traversed link so packet flows see
//             the load (Link::effectiveRate) and fluid flows see measured
//             packet traffic. ~100-1000x cheaper per flow.
//   kAuto   — fluid when the path supports the fluid model's assumptions
//             (no firewall middlebox, loss models memoryless), packet
//             otherwise. See DESIGN.md "Hybrid-fidelity flow engine".
//
// Layering: this header lives in net:: so every layer above can name it,
// but FlowFactory::create() is *defined* in the tcp library
// (src/tcp/flow_factory.cpp) — the one place allowed to construct
// tcp::TcpConnection. Every consumer of the seam already links scidmz_tcp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "net/context.hpp"
#include "sim/codec.hpp"
#include "sim/units.hpp"

namespace scidmz::tcp {
struct TcpConfig;
class TcpConnection;
}  // namespace scidmz::tcp

namespace scidmz::net {

class Host;
class Link;

enum class FlowFidelity { kPacket, kFluid, kAuto };

[[nodiscard]] const char* toString(FlowFidelity fidelity);
[[nodiscard]] std::optional<FlowFidelity> parseFlowFidelity(std::string_view text);

/// The forwarding-plane path a flow's data direction takes, resolved by
/// walking each device's FIB from src to dst (the same tables packets hit).
/// Used by the fluid engine to couple analytic flows to link state, and by
/// the kAuto fidelity rule.
struct FlowPath {
  /// (link, transmitting end) per hop, in src -> dst order.
  std::vector<std::pair<Link*, int>> hops;
  sim::Duration oneWayDelay = sim::Duration::zero();
  sim::DataRate bottleneck = sim::DataRate::zero();
  /// Combined probability a data packet is dropped by the hop loss models.
  double lossRate = 0.0;
  /// All loss along the path is i.i.d. per packet (the Mathis premise).
  bool memorylessLoss = true;
  bool crossesFirewall = false;

  [[nodiscard]] bool complete() const { return !hops.empty(); }
  [[nodiscard]] sim::Duration rtt() const { return oneWayDelay * 2; }
};

/// Walk the routed path between two hosts. Returns an incomplete path
/// (empty hops) when routing dead-ends or loops.
[[nodiscard]] FlowPath traceFlowPath(Host& src, Host& dst);

class FlowHandle;

/// Type-erasing deleter: handles are arena blocks of their concrete type,
/// so destruction dispatches through the handle itself (which knows its own
/// size class) instead of a typed ArenaDeleter.
struct FlowDeleter {
  void operator()(FlowHandle* handle) const noexcept;
};

/// Owning handle to one flow, whatever its fidelity.
using FlowPtr = std::unique_ptr<FlowHandle, FlowDeleter>;

/// One logical flow from src to dst: a listener plus `streams` parallel
/// client connections at packet fidelity, or `streams` aggregated analytic
/// streams at fluid fidelity. Single-stream flows are the common case;
/// multi-stream covers GridFTP-style striping (apps::ParallelTransfer,
/// dtn::DtnTransfer).
class FlowFactory;

class FlowHandle {
 public:
  virtual ~FlowHandle();

  FlowHandle(const FlowHandle&) = delete;
  FlowHandle& operator=(const FlowHandle&) = delete;

  /// Begin the handshake(s). Callbacks must be assigned before this.
  virtual void start() = 0;
  /// Queue bulk data on the next stream, round-robin (callable repeatedly).
  virtual void sendData(sim::DataSize bytes) = 0;
  /// Queue bulk data on one specific stream (explicit striping).
  virtual void sendOnStream(int stream, sim::DataSize bytes) = 0;
  /// Tear both endpoints down mid-flight; in-flight packets drain into
  /// unbound ports, a fluid flow's demand is withdrawn.
  virtual void abort() = 0;

  [[nodiscard]] virtual FlowFidelity fidelity() const = 0;
  [[nodiscard]] virtual int streamCount() const = 0;
  /// All streams established.
  [[nodiscard]] virtual bool established() const = 0;
  /// Every stream has drained its queued data.
  [[nodiscard]] virtual bool sendComplete() const = 0;
  /// Receiver-side in-order bytes handed to the application (all streams).
  [[nodiscard]] virtual sim::DataSize deliveredBytes() const = 0;
  /// Sender-side ACKed bytes (all streams).
  [[nodiscard]] virtual sim::DataSize ackedBytes() const = 0;
  /// Sender-side goodput (acked bytes over active sending time).
  [[nodiscard]] virtual sim::DataRate goodput() const = 0;
  [[nodiscard]] virtual std::uint64_t retransmits() const = 0;
  /// The model's current transmit rate: cwnd/srtt for packet flows, the
  /// integrated analytic rate for fluid flows. Telemetry-oriented.
  [[nodiscard]] virtual sim::DataRate currentRate() const = 0;

  /// Packet-fidelity escape hatches for code that needs (or drives)
  /// per-packet TCP state — window-scaling forensics, server-push
  /// workloads. nullptr at fluid fidelity or before accept; callers own
  /// the fallback behavior.
  [[nodiscard]] virtual tcp::TcpConnection* clientConnection(int stream) = 0;
  [[nodiscard]] virtual tcp::TcpConnection* serverConnection(int stream) = 0;

  /// Snapshot seam (see DESIGN.md "State & serialization"): one dual-mode
  /// pass that saves, or overlays onto an identically rebuilt handle, the
  /// flow's dynamic state — connection/engine state, pending timers, stream
  /// bookkeeping. Returns the number of pending events claimed, for the
  /// snapshot's self-validating event accounting.
  virtual std::uint64_t serializeState(sim::Codec& c) = 0;

  /// Fired as each stream's server side is accepted — the hook for
  /// server-push workloads (the Colorado use case). Packet fidelity fires
  /// it when the listener accepts; fluid fidelity at establishment.
  std::function<void(int)> onAccepted;
  /// Fired as each stream's handshake completes.
  std::function<void(int)> onStreamEstablished;
  /// Fired once, when the last stream's handshake completes.
  std::function<void()> onEstablished;
  /// Receiver side: in-order bytes delivered (any stream). At fluid
  /// fidelity this must be assigned before start() (or inside
  /// onEstablished at the latest): the engine only pays the per-tick
  /// notification cost for flows that registered a listener by then.
  std::function<void(sim::DataSize)> onDelivered;
  /// Fired as each stream drains its queued data (striping progress).
  std::function<void(int)> onStreamSendComplete;
  /// Fired when no stream has queued data left (at least one had some).
  std::function<void()> onSendComplete;

 protected:
  FlowHandle() = default;
  friend struct FlowDeleter;
  friend class FlowFactory;
  /// Destroy this handle and return its arena block (the concrete class
  /// knows its own size).
  virtual void destroySelf() noexcept = 0;

 private:
  /// The factory that created this handle, for live-registry maintenance
  /// (the snapshot orchestrator walks live handles in creation order).
  FlowFactory* registry_ = nullptr;
};

inline void FlowDeleter::operator()(FlowHandle* handle) const noexcept {
  if (handle != nullptr) handle->destroySelf();
}

/// Per-Context flow creation seam, reached via
/// `ctx.extension<net::FlowFactory>()` (or the flowFactory() shorthand).
class FlowFactory {
 public:
  struct Options {
    /// Server (listener) port at packet fidelity; flow identity otherwise.
    std::uint16_t port = 0;
    /// Parallel streams (GridFTP-style striping). At fluid fidelity the
    /// streams aggregate into one analytic flow with an N-fold response
    /// function, matching the parallel-stream loss-resilience argument.
    int streams = 1;
    FlowFidelity fidelity = FlowFidelity::kPacket;
    /// Workloads whose semantics require per-packet TCP (server push,
    /// window-scaling forensics) pin their fidelity: the global override
    /// does not apply.
    bool pinned = false;
    /// Listener-side TCP settings when they differ from the client's (a
    /// tuned DTN sending to an untuned general-purpose server). Null means
    /// both sides use the config passed to create(). Not owned; must
    /// outlive the create() call (the listener copies it).
    const tcp::TcpConfig* serverTcp = nullptr;
  };

  /// A new factory starts from the process-wide override (scidmz_run
  /// --fidelity), so every cell of a sweep sees the same default.
  FlowFactory();
  FlowFactory(const FlowFactory&) = delete;
  FlowFactory& operator=(const FlowFactory&) = delete;

  /// The factory is a Context extension and can be torn down (in ~Context)
  /// before scenario-held FlowPtrs die; detach the survivors so their
  /// destructors do not deregister into a dead registry.
  ~FlowFactory() {
    for (FlowHandle* handle : live_) handle->registry_ = nullptr;
  }

  /// Process-wide overrides (e.g. `scidmz_run --fidelity=fluid`) land here
  /// per cell; kAuto still resolves per path.
  void setOverride(std::optional<FlowFidelity> fidelity) { override_ = fidelity; }
  [[nodiscard]] std::optional<FlowFidelity> overrideFidelity() const { return override_; }

  /// The fidelity a flow between these hosts will actually run at: the
  /// override (if set, and the options not pinned) replaces the requested
  /// fidelity; a resulting kAuto picks fluid iff the routed path has no
  /// firewall and only memoryless loss.
  [[nodiscard]] FlowFidelity resolve(Host& src, Host& dst, const Options& options) const;

  /// Create one flow. Defined in the tcp library (src/tcp/flow_factory.cpp)
  /// — the only production construction site of tcp::TcpConnection.
  [[nodiscard]] FlowPtr create(Host& src, Host& dst, const tcp::TcpConfig& tcp,
                               const Options& options);

  /// Flows created through this factory (the numerator of the
  /// flows_per_second column in BENCH_sim.json).
  [[nodiscard]] std::uint64_t flowsCreated() const { return flows_created_; }
  [[nodiscard]] std::uint64_t fluidFlowsCreated() const { return fluid_flows_created_; }

  /// Handles created through create() and not yet destroyed, in creation
  /// order — the snapshot orchestrator's walk order for the TCP section.
  [[nodiscard]] const std::vector<FlowHandle*>& liveHandles() const { return live_; }

  /// Snapshot/restore: factory counters plus every live handle's state, in
  /// creation order (the rebuild created the same handles in the same
  /// order). Returns claimed pending events.
  std::uint64_t serialize(sim::Codec& c) {
    c.vu64(flows_created_);
    c.vu64(fluid_flows_created_);
    std::uint64_t handleCount = live_.size();
    c.vu64(handleCount);
    if (!c.writing() && handleCount != live_.size()) {
      c.reader().markFailed();
      return 0;
    }
    std::uint64_t claimed = 0;
    for (FlowHandle* handle : live_) claimed += handle->serializeState(c);
    return claimed;
  }

 private:
  friend class FlowHandle;
  void noteHandleCreated(FlowHandle* handle) {
    handle->registry_ = this;
    live_.push_back(handle);
  }
  void noteHandleDestroyed(FlowHandle* handle) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (*it == handle) {
        live_.erase(it);
        return;
      }
    }
  }

  std::optional<FlowFidelity> override_;
  std::uint64_t flows_created_ = 0;
  std::uint64_t fluid_flows_created_ = 0;
  std::vector<FlowHandle*> live_;
};

inline FlowHandle::~FlowHandle() {
  if (registry_ != nullptr) registry_->noteHandleDestroyed(this);
}

[[nodiscard]] inline FlowFactory& flowFactory(Context& ctx) {
  return ctx.extension<FlowFactory>();
}

/// Process-wide fidelity override (`scidmz_run --fidelity=...`): installed
/// into every FlowFactory constructed afterwards. Set once at startup,
/// before any simulation runs; sweep workers read it without
/// synchronization, so never flip it mid-run.
void setProcessFidelityOverride(std::optional<FlowFidelity> fidelity);
[[nodiscard]] std::optional<FlowFidelity> processFidelityOverride();

}  // namespace scidmz::net
