// Shared per-scenario services handed to every component by reference.
// Holding them in one struct keeps constructors short and makes it obvious
// that a scenario is a unit of determinism: one Simulator, one master Rng,
// one Logger, one Telemetry hub, one Arena.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet_pool.hpp"
#include "sim/arena.hpp"
#include "sim/codec.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace scidmz::net {

namespace detail {
/// One id per extension type, assigned on first use, process-wide — so
/// every Context indexes its extension table identically. fetch_add keeps
/// first-use races between sweep threads safe.
inline std::atomic<std::size_t> next_extension_id{0};
template <typename T>
std::size_t extensionId() {
  static const std::size_t id = next_extension_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace detail

class Context {
 public:
  Context(sim::Simulator& simulator, sim::Rng& rng, sim::Logger& logger)
      : sim_(simulator), rng_(rng), log_(logger), telemetry_(simulator, arena_) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// The Simulator outlives the Context in every harness (declared first,
  /// destroyed last), and pending event callbacks own PacketRefs into this
  /// Context's pool. Destroy them now, while the pool is still alive —
  /// otherwise teardown would release packet slots into a dead pool.
  ~Context() { sim_.clearPendingEvents(); }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] const sim::Logger& log() const { return log_; }
  /// Scenario-local instrumentation; disabled (near-zero cost) unless the
  /// scenario calls telemetry().enable() or SCIDMZ_TELEMETRY is set.
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const { return telemetry_; }
  /// The scenario's packet pool: every in-flight packet lives in one of its
  /// slots and travels as a PacketRef handle (see net/packet_pool.hpp).
  [[nodiscard]] PacketPool& pool() { return pool_; }
  [[nodiscard]] const PacketPool& pool() const { return pool_; }
  /// The scenario's object arena: connections, flow state and telemetry
  /// series allocate here instead of the global heap (see sim/arena.hpp).
  /// Declared first in the member list, so it outlives every other member
  /// and every ArenaPtr issued to scenario components.
  [[nodiscard]] sim::Arena& arena() { return arena_; }
  [[nodiscard]] const sim::Arena& arena() const { return arena_; }

  /// Per-Context singleton of an arbitrary default-constructible type,
  /// created on first use. This is how higher layers attach per-scenario
  /// state (e.g. tcp::FlowHotTable) without net:: depending on them:
  /// the Context stores them type-erased, keyed by a process-wide type id.
  template <typename T>
  [[nodiscard]] T& extension() {
    const std::size_t id = detail::extensionId<T>();
    if (id >= extensions_.size()) extensions_.resize(id + 1);
    Extension& slot = extensions_[id];
    if (!slot.ptr) {
      slot.ptr = new T();
      slot.destroy = [](void* p) { delete static_cast<T*>(p); };
    }
    return *static_cast<T*>(slot.ptr);
  }

  /// Forwarding-plane throughput counter: bumped once per successful
  /// `Device::forward` hop. Sweep cells report it into BENCH_sim.json as
  /// packets/sec, the datapath counterpart to events/sec.
  void countForwarded() { ++packets_forwarded_; }
  [[nodiscard]] std::uint64_t packetsForwarded() const { return packets_forwarded_; }

  [[nodiscard]] sim::SimTime now() const { return sim_.now(); }
  [[nodiscard]] std::uint64_t nextPacketId() { return ++packet_id_; }
  /// Scenario-local measurement-stream ids (OWAMP etc.). Keeping the counter
  /// here — never in function-local statics — is what lets sweep cells run
  /// in parallel without races or cross-cell id drift.
  [[nodiscard]] std::uint32_t nextStreamId() { return ++stream_id_; }

  // --- Snapshot/restore seam -----------------------------------------------

  /// Arm in-flight packet tracking. Event closures are opaque to the
  /// snapshot layer, so when armed the datapath (Interface tx-complete,
  /// Link delivery, Switch forward-latency) records each in-flight packet
  /// alongside its event handle. Must be armed from the start of a run that
  /// intends to snapshot; costs nothing when disarmed (one bool load per
  /// scheduled datapath event).
  void armSnapshots() { snapshots_armed_ = true; }
  [[nodiscard]] bool snapshotsArmed() const { return snapshots_armed_; }

  /// Plain-counter state (packet ids, stream ids, forwarded count). The id
  /// counters feed packet identity in traces, so they must continue the
  /// snapshotted numbering exactly.
  void serialize(sim::Codec& c) {
    c.vu64(packet_id_);
    c.vu64(packets_forwarded_);
    c.vu32(stream_id_);
  }

 private:
  struct Extension {
    void* ptr = nullptr;
    void (*destroy)(void*) = nullptr;

    Extension() = default;
    Extension(Extension&& other) noexcept : ptr(other.ptr), destroy(other.destroy) {
      other.ptr = nullptr;
      other.destroy = nullptr;
    }
    Extension& operator=(Extension&& other) noexcept {
      if (this != &other) {
        reset();
        ptr = other.ptr;
        destroy = other.destroy;
        other.ptr = nullptr;
        other.destroy = nullptr;
      }
      return *this;
    }
    Extension(const Extension&) = delete;
    Extension& operator=(const Extension&) = delete;
    ~Extension() { reset(); }
    void reset() {
      if (ptr != nullptr) destroy(ptr);
      ptr = nullptr;
      destroy = nullptr;
    }
  };

  sim::Arena arena_;  // first: outlives everything that allocates from it
  sim::Simulator& sim_;
  sim::Rng& rng_;
  sim::Logger& log_;
  telemetry::Telemetry telemetry_;
  PacketPool pool_;
  std::vector<Extension> extensions_;
  std::uint64_t packet_id_ = 0;
  std::uint64_t packets_forwarded_ = 0;
  std::uint32_t stream_id_ = 0;
  bool snapshots_armed_ = false;
};

}  // namespace scidmz::net
