// Shared per-scenario services handed to every component by reference.
// Holding them in one struct keeps constructors short and makes it obvious
// that a scenario is a unit of determinism: one Simulator, one master Rng,
// one Logger, one Telemetry hub.
#pragma once

#include <cstdint>

#include "net/packet_pool.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace scidmz::net {

class Context {
 public:
  Context(sim::Simulator& simulator, sim::Rng& rng, sim::Logger& logger)
      : sim_(simulator), rng_(rng), log_(logger), telemetry_(simulator) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// The Simulator outlives the Context in every harness (declared first,
  /// destroyed last), and pending event callbacks own PacketRefs into this
  /// Context's pool. Destroy them now, while the pool is still alive —
  /// otherwise teardown would release packet slots into a dead pool.
  ~Context() { sim_.clearPendingEvents(); }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] const sim::Logger& log() const { return log_; }
  /// Scenario-local instrumentation; disabled (near-zero cost) unless the
  /// scenario calls telemetry().enable() or SCIDMZ_TELEMETRY is set.
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const { return telemetry_; }
  /// The scenario's packet pool: every in-flight packet lives in one of its
  /// slots and travels as a PacketRef handle (see net/packet_pool.hpp).
  [[nodiscard]] PacketPool& pool() { return pool_; }
  [[nodiscard]] const PacketPool& pool() const { return pool_; }

  /// Forwarding-plane throughput counter: bumped once per successful
  /// `Device::forward` hop. Sweep cells report it into BENCH_sim.json as
  /// packets/sec, the datapath counterpart to events/sec.
  void countForwarded() { ++packets_forwarded_; }
  [[nodiscard]] std::uint64_t packetsForwarded() const { return packets_forwarded_; }

  [[nodiscard]] sim::SimTime now() const { return sim_.now(); }
  [[nodiscard]] std::uint64_t nextPacketId() { return ++packet_id_; }
  /// Scenario-local measurement-stream ids (OWAMP etc.). Keeping the counter
  /// here — never in function-local statics — is what lets sweep cells run
  /// in parallel without races or cross-cell id drift.
  [[nodiscard]] std::uint32_t nextStreamId() { return ++stream_id_; }

 private:
  sim::Simulator& sim_;
  sim::Rng& rng_;
  sim::Logger& log_;
  telemetry::Telemetry telemetry_;
  PacketPool pool_;
  std::uint64_t packet_id_ = 0;
  std::uint64_t packets_forwarded_ = 0;
  std::uint32_t stream_id_ = 0;
};

}  // namespace scidmz::net
