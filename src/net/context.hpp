// Shared per-scenario services handed to every component by reference.
// Holding them in one struct keeps constructors short and makes it obvious
// that a scenario is a unit of determinism: one Simulator, one master Rng,
// one Logger, one Telemetry hub.
#pragma once

#include <cstdint>

#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace scidmz::net {

class Context {
 public:
  Context(sim::Simulator& simulator, sim::Rng& rng, sim::Logger& logger)
      : sim_(simulator), rng_(rng), log_(logger), telemetry_(simulator) {}

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] const sim::Logger& log() const { return log_; }
  /// Scenario-local instrumentation; disabled (near-zero cost) unless the
  /// scenario calls telemetry().enable() or SCIDMZ_TELEMETRY is set.
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const { return telemetry_; }

  [[nodiscard]] sim::SimTime now() const { return sim_.now(); }
  [[nodiscard]] std::uint64_t nextPacketId() { return ++packet_id_; }
  /// Scenario-local measurement-stream ids (OWAMP etc.). Keeping the counter
  /// here — never in function-local statics — is what lets sweep cells run
  /// in parallel without races or cross-cell id drift.
  [[nodiscard]] std::uint32_t nextStreamId() { return ++stream_id_; }

 private:
  sim::Simulator& sim_;
  sim::Rng& rng_;
  sim::Logger& log_;
  telemetry::Telemetry telemetry_;
  std::uint64_t packet_id_ = 0;
  std::uint32_t stream_id_ = 0;
};

}  // namespace scidmz::net
