// Forwarding devices: switches and routers.
//
// Both forward by longest-prefix match with per-port byte-bounded egress
// queues; the difference is configuration. Switch profiles capture the two
// populations the paper contrasts: deep-buffered "science" switches that
// absorb TCP bursts and fan-in, and cheap LAN switches that cannot. The
// optional fan-in defect reproduces the University of Colorado vendor bug:
// under high offered load the device falls back from cut-through to
// store-and-forward and, pre-fix, loses most of its usable buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/acl.hpp"
#include "net/device.hpp"
#include "net/link.hpp"

namespace scidmz::net {

enum class ForwardingMode : std::uint8_t { kCutThrough, kStoreAndForward };

struct SwitchProfile {
  /// Default egress buffer for ports added via Topology helpers.
  sim::DataSize egressBuffer = sim::DataSize::mebibytes(32);
  /// Fixed pipeline latency added to every forwarded packet.
  sim::Duration processingDelay = sim::Duration::microseconds(1);
  ForwardingMode mode = ForwardingMode::kCutThrough;
  /// Bytes of a frame that must arrive before cut-through forwarding starts.
  sim::DataSize cutThroughHeader = sim::DataSize::bytes(64);

  /// Deep-buffered science-DMZ switch/router.
  static SwitchProfile scienceDmz() { return SwitchProfile{}; }

  /// Inexpensive campus LAN switch: shallow shared buffer.
  static SwitchProfile cheapLan() {
    SwitchProfile p;
    p.egressBuffer = sim::DataSize::kibibytes(192);
    return p;
  }
};

/// The Colorado defect: when aggregate ingress load exceeds `loadThreshold`
/// the device latches into store-and-forward mode, and while the defect is
/// unfixed the usable egress buffer collapses to `defectiveBuffer`.
struct FanInDefect {
  bool enabled = false;
  sim::DataRate loadThreshold = sim::DataRate::gigabitsPerSecond(8);
  sim::DataSize defectiveBuffer = sim::DataSize::kibibytes(64);
  sim::Duration loadWindow = sim::Duration::milliseconds(10);
};

class SwitchDevice : public Device {
 public:
  SwitchDevice(Context& ctx, std::string name, SwitchProfile profile = SwitchProfile::scienceDmz())
      : Device(ctx, std::move(name)), profile_(profile) {}

  [[nodiscard]] const SwitchProfile& profile() const { return profile_; }
  [[nodiscard]] ForwardingMode mode() const { return mode_override_.value_or(profile_.mode); }
  void setMode(ForwardingMode m) { mode_override_ = m; }

  /// Optional ingress ACL applied to all transiting packets (line rate).
  void setAcl(AclTable acl) { acl_ = std::move(acl); }
  [[nodiscard]] const std::optional<AclTable>& acl() const { return acl_; }
  void clearAcl() { acl_.reset(); }

  void setFanInDefect(FanInDefect defect) { defect_ = defect; }
  [[nodiscard]] const FanInDefect& fanInDefect() const { return defect_; }
  /// Apply the vendor firmware fix: store-and-forward keeps full buffers.
  void applyVendorFix() { defect_fixed_ = true; }
  [[nodiscard]] bool inDefectiveState() const { return defect_latched_ && !defect_fixed_; }
  /// True once high load has forced the store-and-forward fallback
  /// (regardless of whether the firmware fix neutralizes the buffer bug).
  [[nodiscard]] bool fallbackLatched() const { return defect_latched_; }

  void receive(PacketRef packet, Interface& in) override;

  /// Snapshot/restore: device state, the defect latch and its load window,
  /// and packets sitting in the forwarding pipeline. Pipeline latency is
  /// size-dependent, so completions are not FIFO — each record carries a
  /// token its completion event erases on fire.
  std::uint64_t serialize(sim::Codec& c) override;

 private:
  void trackLoad(const Packet& packet);
  [[nodiscard]] sim::Duration forwardingLatency(const Packet& packet, const Interface& in) const;
  void eraseInFlight(std::uint64_t token);

  /// A packet in the forwarding pipeline (only tracked while snapshots are
  /// armed): the completion event's id plus a copy of the packet.
  struct InFlight {
    std::uint64_t token = 0;
    sim::EventId id{};
    Packet packet;
  };

  SwitchProfile profile_;
  std::optional<ForwardingMode> mode_override_;
  std::optional<AclTable> acl_;

  FanInDefect defect_;
  bool defect_latched_ = false;
  bool defect_fixed_ = false;
  sim::SimTime window_start_ = sim::SimTime::zero();
  sim::DataSize window_bytes_ = sim::DataSize::zero();
  std::vector<InFlight> in_flight_;
  std::uint64_t next_fwd_token_ = 0;
};

/// Routers share the switch forwarding machinery; the distinct type exists
/// because the design-pattern validator reasons about device roles (border
/// router vs DMZ switch vs LAN switch).
class RouterDevice : public SwitchDevice {
 public:
  RouterDevice(Context& ctx, std::string name, SwitchProfile profile = SwitchProfile::scienceDmz())
      : SwitchDevice(ctx, std::move(name), profile) {
    setMode(ForwardingMode::kStoreAndForward);
  }
};

}  // namespace scidmz::net
