#include "net/link.hpp"

#include <string>

#include "net/device.hpp"
#include "net/trace.hpp"

namespace scidmz::net {

Link::Link(Context& ctx, LinkParams params, Interface& endA, Interface& endB)
    : ctx_(ctx), params_(params), endA_(endA), endB_(endB) {
  endA_.attachLink(*this, 0);
  endB_.attachLink(*this, 1);
}

void Link::setLossModel(int fromEnd, std::unique_ptr<LossModel> model) {
  loss_[fromEnd & 1] = std::move(model);
}

void Link::repair() {
  loss_[0].reset();
  loss_[1].reset();
}

void Link::initTelemetry(int dir) {
  auto& tel = ctx_.telemetry();
  const std::string name =
      end(dir).owner().name() + "->" + peer(dir).owner().name();
  DirTelemetry& t = tel_[dir & 1];
  t.point = tel.recorder().internPoint("link:" + name);
  t.lost = &tel.metrics().counter("link/" + name + "/lost");
  t.delivered = &tel.metrics().counter("link/" + name + "/delivered");
  t.init = true;
}

void Link::transmitComplete(int fromEnd, PacketRef packet) {
  auto& dir = stats_[fromEnd & 1];
  auto& loss = loss_[fromEnd & 1];
  auto& tel = ctx_.telemetry();
  const bool traced = tel.enabled();
  if (traced && !tel_[fromEnd & 1].init) initTelemetry(fromEnd & 1);
  if (loss && loss->shouldDrop(*packet)) {
    ++dir.lost;
    if (traced) {
      ++*tel_[fromEnd & 1].lost;
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kLinkLoss;
      ev.point = tel_[fromEnd & 1].point;
      tel.recorder().record(ev);
    }
    return;
  }
  ++dir.delivered;
  dir.bytesDelivered += packet->wireSize();
  if (traced) {
    ++*tel_[fromEnd & 1].delivered;
    telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
    ev.kind = telemetry::FlightEventKind::kDeliver;
    ev.point = tel_[fromEnd & 1].point;
    tel.recorder().record(ev);
  }
  Interface& dst = peer(fromEnd);
  ctx_.sim().schedule(params_.delay, [&dst, pkt = std::move(packet)]() mutable {
    dst.owner().receive(std::move(pkt), dst);
  });
}

}  // namespace scidmz::net
