#include "net/link.hpp"

#include <string>

#include "net/codec.hpp"
#include "net/device.hpp"
#include "net/trace.hpp"
#include "sim/domain.hpp"

namespace scidmz::net {

Link::Link(Context& ctx, LinkParams params, Interface& endA, Interface& endB)
    : ctx_(ctx), params_(params), endA_(endA), endB_(endB) {
  endA_.attachLink(*this, 0);
  endB_.attachLink(*this, 1);
}

void Link::setLossModel(int fromEnd, std::unique_ptr<LossModel> model) {
  loss_[fromEnd & 1] = std::move(model);
}

void Link::repair() {
  loss_[0].reset();
  loss_[1].reset();
}

void Link::initTelemetry(int dir) {
  // Direction state belongs to the sending end's domain: its owner's ctx is
  // ctx_ in ordinary runs and the sender domain's ctx under sharding.
  auto& tel = end(dir).owner().ctx().telemetry();
  const std::string name =
      end(dir).owner().name() + "->" + peer(dir).owner().name();
  DirTelemetry& t = tel_[dir & 1];
  t.point = tel.recorder().internPoint("link:" + name);
  t.lost = &tel.metrics().counter("link/" + name + "/lost");
  t.delivered = &tel.metrics().counter("link/" + name + "/delivered");
  t.init = true;
}

void Link::transmitComplete(int fromEnd, PacketRef packet) {
  auto& dir = stats_[fromEnd & 1];
  auto& loss = loss_[fromEnd & 1];
  // Per-direction state (stats, loss, telemetry) lives with the sending
  // end's domain; sctx is ctx_ whenever the topology is unsharded.
  Context& sctx = end(fromEnd).owner().ctx();
  auto& tel = sctx.telemetry();
  const bool traced = tel.enabled();
  if (traced && !tel_[fromEnd & 1].init) initTelemetry(fromEnd & 1);
  if (loss && loss->shouldDrop(*packet)) {
    ++dir.lost;
    if (traced) {
      ++*tel_[fromEnd & 1].lost;
      telemetry::FlightEvent ev = makeFlightEvent(sctx.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kLinkLoss;
      ev.point = tel_[fromEnd & 1].point;
      tel.recorder().record(ev);
    }
    return;
  }
  ++dir.delivered;
  dir.bytesDelivered += packet->wireSize();
  if (traced) {
    ++*tel_[fromEnd & 1].delivered;
    telemetry::FlightEvent ev = makeFlightEvent(sctx.now(), *packet);
    ev.kind = telemetry::FlightEventKind::kDeliver;
    ev.point = tel_[fromEnd & 1].point;
    tel.recorder().record(ev);
  }
  Interface& dst = peer(fromEnd);
  if (sharded_ != nullptr) {
    // Boundary channel: hand a by-value copy to the destination domain
    // (this sender's pool slot recycles here); the closure runs on the
    // destination thread and re-acquires from that domain's pool.
    Packet p = *packet;
    sharded_->post(channel_[fromEnd & 1], sctx.now() + params_.delay,
                   [&dst, p = std::move(p)]() mutable {
                     Device& owner = dst.owner();
                     owner.receive(owner.ctx().pool().acquire(std::move(p)), dst);
                   });
    return;
  }
  if (ctx_.snapshotsArmed()) {
    const int d = fromEnd & 1;
    Packet copy = *packet;
    const auto id = ctx_.sim().schedule(
        params_.delay, [this, d, &dst, pkt = std::move(packet)]() mutable {
          in_flight_[d].pop_front();
          dst.owner().receive(std::move(pkt), dst);
        });
    in_flight_[d].push_back(InFlight{id, std::move(copy)});
    return;
  }
  ctx_.sim().schedule(params_.delay, [&dst, pkt = std::move(packet)]() mutable {
    dst.owner().receive(std::move(pkt), dst);
  });
}

std::uint64_t Link::serialize(sim::Codec& c) {
  std::uint64_t claimed = 0;
  for (int d = 0; d < 2; ++d) {
    c.vu64(stats_[d].delivered);
    c.vu64(stats_[d].lost);
    sim::codecSize(c, stats_[d].bytesDelivered);
    sim::codecRate(c, fluid_demand_[d]);

    // Loss-model *state* only; parameters come from scenario rebuild. A
    // snapshot taken after repair() clears the rebuilt model; a snapshot
    // holding state for a model the rebuild lacks is refused.
    bool hasLoss = loss_[d] != nullptr;
    c.b(hasLoss);
    if (hasLoss) {
      if (!c.writing() && !loss_[d]) {
        c.reader().markFailed();
        return claimed;
      }
      loss_[d]->serializeState(c);
    } else if (!c.writing()) {
      loss_[d].reset();
    }

    if (c.writing()) {
      std::uint64_t n = in_flight_[d].size();
      c.vu64(n);
      for (auto& rec : in_flight_[d]) {
        auto key = ctx_.sim().eventKey(rec.id);
        sim::SimTime at = key.at;
        std::uint64_t seq = key.seq;
        c.b(key.valid);
        sim::codecTime(c, at);
        c.vu64(seq);
        codecPacket(c, rec.packet);
        ++claimed;
      }
    } else {
      in_flight_[d].clear();
      std::uint64_t n = 0;
      c.vu64(n);
      Interface& dst = peer(d);
      for (std::uint64_t i = 0; i < n; ++i) {
        bool valid = false;
        sim::SimTime at = sim::SimTime::zero();
        std::uint64_t seq = 0;
        c.b(valid);
        sim::codecTime(c, at);
        c.vu64(seq);
        Packet p;
        codecPacket(c, p);
        if (!valid) {
          c.reader().markFailed();
          return claimed;
        }
        Packet copy = p;
        PacketRef ref = ctx_.pool().acquire(std::move(p));
        const auto id = ctx_.sim().restoreSchedule(
            at, seq, [this, d, &dst, pkt = std::move(ref)]() mutable {
              in_flight_[d].pop_front();
              dst.owner().receive(std::move(pkt), dst);
            });
        in_flight_[d].push_back(InFlight{id, std::move(copy)});
        ++claimed;
      }
    }
  }
  return claimed;
}

}  // namespace scidmz::net
