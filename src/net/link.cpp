#include "net/link.hpp"

#include "net/device.hpp"

namespace scidmz::net {

Link::Link(Context& ctx, LinkParams params, Interface& endA, Interface& endB)
    : ctx_(ctx), params_(params), endA_(endA), endB_(endB) {
  endA_.attachLink(*this, 0);
  endB_.attachLink(*this, 1);
}

void Link::setLossModel(int fromEnd, std::unique_ptr<LossModel> model) {
  loss_[fromEnd & 1] = std::move(model);
}

void Link::repair() {
  loss_[0].reset();
  loss_[1].reset();
}

void Link::transmitComplete(int fromEnd, Packet packet) {
  auto& dir = stats_[fromEnd & 1];
  auto& loss = loss_[fromEnd & 1];
  if (loss && loss->shouldDrop(packet)) {
    ++dir.lost;
    return;
  }
  ++dir.delivered;
  dir.bytesDelivered += packet.wireSize();
  Interface& dst = peer(fromEnd);
  ctx_.sim().schedule(params_.delay, [&dst, pkt = std::move(packet)]() mutable {
    dst.owner().receive(std::move(pkt), dst);
  });
}

}  // namespace scidmz::net
