// The simulated packet. A value type: payload contents are modeled only by
// size, while protocol headers carry the fields the simulation actually
// exercises (TCP sequencing/window negotiation, one-way probe timestamps).
#pragma once

#include <array>
#include <cstdint>
#include <variant>

#include "net/address.hpp"
#include "sim/units.hpp"

namespace scidmz::net {

/// Fixed header overhead (IPv4 + TCP, no options beyond what we model).
inline constexpr sim::DataSize kTcpIpHeaderBytes = sim::DataSize::bytes(40);
/// IPv4 + UDP overhead for probe traffic.
inline constexpr sim::DataSize kUdpIpHeaderBytes = sim::DataSize::bytes(28);

/// TCP flag bits.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

/// TCP header fields the simulation models. Window advertisement follows
/// RFC 1323 semantics: a 16-bit field plus a shift negotiated via the
/// window-scale option carried on SYN segments. Middleboxes that perform
/// "flow sequence checking" can strip `windowScalePresent`, capping the
/// effective window at 65535 bytes (the Penn State failure mode).
struct TcpHeader {
  std::uint64_t seq = 0;        ///< First payload byte's sequence number.
  std::uint64_t ackNo = 0;      ///< Cumulative ACK (next expected byte).
  TcpFlags flags;
  std::uint16_t windowField = 0;    ///< Raw 16-bit advertised window.
  std::uint8_t windowScale = 0;     ///< Shift offered in the SYN option.
  bool windowScalePresent = false;  ///< Option present on this SYN.
  /// RFC 7323 timestamps (modeled as raw nanosecond stamps): tsVal is the
  /// sender's clock at transmission; tsEcho returns the tsVal of the
  /// segment that triggered this ACK, giving loss-proof RTT samples.
  std::uint64_t tsVal = 0;
  std::uint64_t tsEcho = 0;
  /// SACK-lite: right edge of the highest contiguous block above a hole,
  /// zero when absent.
  std::uint64_t sackHint = 0;
  /// SACK option (RFC 2018): up to three received-but-not-yet-cumulative
  /// byte ranges [start, end). Senders build a scoreboard from these and
  /// repair multiple holes per RTT (RFC 6675-style recovery).
  struct SackBlock {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
  };
  std::array<SackBlock, 3> sackBlocks{};
  std::uint8_t sackCount = 0;
};

/// One-way active measurement header (OWAMP-style).
struct ProbeHeader {
  std::uint32_t streamId = 0;
  std::uint64_t seqNo = 0;
  sim::SimTime sentAt;  ///< Stamped by the sender; receivers compute one-way delay.
};

/// RDMA-over-Converged-Ethernet style header (RoCE, Section 7.1): simple
/// sequencing with NACK-driven go-back-N — no congestion control, which is
/// why it needs a guaranteed-bandwidth, loss-free virtual circuit.
struct RoceHeader {
  std::uint64_t seq = 0;
  bool isNack = false;
  std::uint64_t nackSeq = 0;  ///< First missing byte, when isNack.
  bool isAck = false;
  std::uint64_t ackSeq = 0;  ///< Cumulative bytes received, when isAck.
};

using PacketBody = std::variant<std::monostate, TcpHeader, ProbeHeader, RoceHeader>;

struct Packet {
  FlowKey flow;
  PacketBody body;
  sim::DataSize payload = sim::DataSize::zero();
  std::uint8_t ttl = 64;
  std::uint64_t id = 0;  ///< Globally unique per scenario, for tracing.

  [[nodiscard]] bool isTcp() const { return std::holds_alternative<TcpHeader>(body); }
  [[nodiscard]] bool isProbe() const { return std::holds_alternative<ProbeHeader>(body); }
  [[nodiscard]] bool isRoce() const { return std::holds_alternative<RoceHeader>(body); }
  [[nodiscard]] RoceHeader& roce() { return std::get<RoceHeader>(body); }
  [[nodiscard]] const RoceHeader& roce() const { return std::get<RoceHeader>(body); }
  [[nodiscard]] TcpHeader& tcp() { return std::get<TcpHeader>(body); }
  [[nodiscard]] const TcpHeader& tcp() const { return std::get<TcpHeader>(body); }
  [[nodiscard]] ProbeHeader& probe() { return std::get<ProbeHeader>(body); }
  [[nodiscard]] const ProbeHeader& probe() const { return std::get<ProbeHeader>(body); }

  /// On-the-wire size including protocol overhead.
  [[nodiscard]] sim::DataSize wireSize() const {
    return payload + (flow.proto == Protocol::kTcp ? kTcpIpHeaderBytes : kUdpIpHeaderBytes);
  }
};

/// Factory helpers keeping call sites terse.
[[nodiscard]] inline Packet makeTcpPacket(FlowKey flow, TcpHeader header, sim::DataSize payload) {
  Packet p;
  p.flow = flow;
  p.body = header;
  p.payload = payload;
  return p;
}

[[nodiscard]] inline Packet makeProbePacket(FlowKey flow, ProbeHeader header,
                                            sim::DataSize payload) {
  Packet p;
  p.flow = flow;
  p.body = header;
  p.payload = payload;
  return p;
}

}  // namespace scidmz::net
