#include "net/switch.hpp"

#include "net/trace.hpp"

namespace scidmz::net {

void SwitchDevice::receive(PacketRef packet, Interface& in) {
  notifyTap(*packet, in);
  ++stats_.rxPackets;
  stats_.rxBytes += packet->wireSize();

  if (acl_ && !acl_->permits(*packet)) {
    ++stats_.dropsAcl;
    auto& tel = ctx_.telemetry();
    if (tel.enabled()) {
      ++tel.metrics().counter("switch/" + name() + "/drops_acl");
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kDrop;
      ev.point = tel.recorder().internPoint(name() + "/acl");
      tel.recorder().record(ev);
    }
    return;
  }

  trackLoad(*packet);

  // While latched into the defective store-and-forward state, usable egress
  // buffering collapses. Model: clamp every egress queue's capacity; restore
  // when the fix is applied (applyVendorFix re-expands on next packet).
  const auto targetCapacity =
      inDefectiveState() ? defect_.defectiveBuffer : profile_.egressBuffer;
  for (std::size_t i = 0; i < interfaceCount(); ++i) {
    if (interface(i).queue().capacity() != targetCapacity) {
      interface(i).queue().setCapacity(targetCapacity);
    }
  }

  const auto latency = forwardingLatency(*packet, in);
  ctx_.sim().schedule(latency, [this, pkt = std::move(packet)]() mutable {
    forward(std::move(pkt));
  });
}

void SwitchDevice::trackLoad(const Packet& packet) {
  if (!defect_.enabled) return;
  const auto now = ctx_.now();
  if (now - window_start_ > defect_.loadWindow) {
    window_start_ = now;
    window_bytes_ = sim::DataSize::zero();
  }
  window_bytes_ += packet.wireSize();
  const double seconds = defect_.loadWindow.toSeconds();
  const double bps = static_cast<double>(window_bytes_.bitCount()) / seconds;
  if (!defect_latched_ && bps > static_cast<double>(defect_.loadThreshold.bps())) {
    defect_latched_ = true;  // sticky, as observed at Colorado
    ctx_.log().log(now, sim::LogLevel::kWarn, name(),
                   "high load: falling back to store-and-forward mode");
    auto& tel = ctx_.telemetry();
    if (tel.enabled()) ++tel.metrics().counter("switch/" + name() + "/defect_latched");
  }
}

sim::Duration SwitchDevice::forwardingLatency(const Packet& packet, const Interface& in) const {
  const auto ingressRate = in.rate();
  const bool storeForward =
      mode() == ForwardingMode::kStoreAndForward || defect_latched_;
  if (!storeForward) {
    // Cut-through: begin forwarding once the header has arrived. The link
    // already delivered the full frame, so credit back the difference.
    return profile_.processingDelay;
  }
  // Store-and-forward re-buffers the whole frame before the lookup; charge
  // one extra serialization at the ingress rate.
  if (ingressRate == sim::DataRate::zero()) return profile_.processingDelay;
  return profile_.processingDelay + ingressRate.transmissionTime(packet.wireSize());
}

}  // namespace scidmz::net
