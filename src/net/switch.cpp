#include "net/switch.hpp"

#include "net/codec.hpp"
#include "net/trace.hpp"

namespace scidmz::net {

void SwitchDevice::receive(PacketRef packet, Interface& in) {
  notifyTap(*packet, in);
  ++stats_.rxPackets;
  stats_.rxBytes += packet->wireSize();

  if (acl_ && !acl_->permits(*packet)) {
    ++stats_.dropsAcl;
    auto& tel = ctx_.telemetry();
    if (tel.enabled()) {
      ++tel.metrics().counter("switch/" + name() + "/drops_acl");
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kDrop;
      ev.point = tel.recorder().internPoint(name() + "/acl");
      tel.recorder().record(ev);
    }
    return;
  }

  trackLoad(*packet);

  // While latched into the defective store-and-forward state, usable egress
  // buffering collapses. Model: clamp every egress queue's capacity; restore
  // when the fix is applied (applyVendorFix re-expands on next packet).
  const auto targetCapacity =
      inDefectiveState() ? defect_.defectiveBuffer : profile_.egressBuffer;
  for (std::size_t i = 0; i < interfaceCount(); ++i) {
    if (interface(i).queue().capacity() != targetCapacity) {
      interface(i).queue().setCapacity(targetCapacity);
    }
  }

  const auto latency = forwardingLatency(*packet, in);
  if (ctx_.snapshotsArmed()) {
    Packet copy = *packet;
    const std::uint64_t token = next_fwd_token_++;
    const auto id = ctx_.sim().schedule(
        latency, [this, token, pkt = std::move(packet)]() mutable {
          eraseInFlight(token);
          forward(std::move(pkt));
        });
    in_flight_.push_back(InFlight{token, id, std::move(copy)});
    return;
  }
  ctx_.sim().schedule(latency, [this, pkt = std::move(packet)]() mutable {
    forward(std::move(pkt));
  });
}

void SwitchDevice::eraseInFlight(std::uint64_t token) {
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->token == token) {
      in_flight_.erase(it);
      return;
    }
  }
}

std::uint64_t SwitchDevice::serialize(sim::Codec& c) {
  std::uint64_t claimed = Device::serialize(c);
  if (!c.ok()) return claimed;
  c.b(defect_latched_);
  c.b(defect_fixed_);
  sim::codecTime(c, window_start_);
  sim::codecSize(c, window_bytes_);
  if (c.writing()) {
    std::uint64_t n = in_flight_.size();
    c.vu64(n);
    for (auto& rec : in_flight_) {
      auto key = ctx_.sim().eventKey(rec.id);
      bool valid = key.valid;
      sim::SimTime at = key.at;
      std::uint64_t seq = key.seq;
      c.b(valid);
      sim::codecTime(c, at);
      c.vu64(seq);
      codecPacket(c, rec.packet);
      ++claimed;
    }
  } else {
    in_flight_.clear();
    std::uint64_t n = 0;
    c.vu64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      bool valid = false;
      sim::SimTime at = sim::SimTime::zero();
      std::uint64_t seq = 0;
      c.b(valid);
      sim::codecTime(c, at);
      c.vu64(seq);
      Packet p;
      codecPacket(c, p);
      if (!valid) {
        c.reader().markFailed();
        return claimed;
      }
      Packet copy = p;
      PacketRef ref = ctx_.pool().acquire(std::move(p));
      const std::uint64_t token = next_fwd_token_++;
      const auto id = ctx_.sim().restoreSchedule(
          at, seq, [this, token, pkt = std::move(ref)]() mutable {
            eraseInFlight(token);
            forward(std::move(pkt));
          });
      in_flight_.push_back(InFlight{token, id, std::move(copy)});
      ++claimed;
    }
  }
  return claimed;
}

void SwitchDevice::trackLoad(const Packet& packet) {
  if (!defect_.enabled) return;
  const auto now = ctx_.now();
  if (now - window_start_ > defect_.loadWindow) {
    window_start_ = now;
    window_bytes_ = sim::DataSize::zero();
  }
  window_bytes_ += packet.wireSize();
  const double seconds = defect_.loadWindow.toSeconds();
  const double bps = static_cast<double>(window_bytes_.bitCount()) / seconds;
  if (!defect_latched_ && bps > static_cast<double>(defect_.loadThreshold.bps())) {
    defect_latched_ = true;  // sticky, as observed at Colorado
    ctx_.log().log(now, sim::LogLevel::kWarn, name(),
                   "high load: falling back to store-and-forward mode");
    auto& tel = ctx_.telemetry();
    if (tel.enabled()) ++tel.metrics().counter("switch/" + name() + "/defect_latched");
  }
}

sim::Duration SwitchDevice::forwardingLatency(const Packet& packet, const Interface& in) const {
  const auto ingressRate = in.rate();
  const bool storeForward =
      mode() == ForwardingMode::kStoreAndForward || defect_latched_;
  if (!storeForward) {
    // Cut-through: begin forwarding once the header has arrived. The link
    // already delivered the full frame, so credit back the difference.
    return profile_.processingDelay;
  }
  // Store-and-forward re-buffers the whole frame before the lookup; charge
  // one extra serialization at the ingress rate.
  if (ingressRate == sim::DataRate::zero()) return profile_.processingDelay;
  return profile_.processingDelay + ingressRate.transmissionTime(packet.wireSize());
}

}  // namespace scidmz::net
