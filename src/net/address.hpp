// IPv4-style addressing for the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace scidmz::net {

/// 32-bit network address with IPv4 dotted-quad formatting.
class Address {
 public:
  constexpr Address() = default;
  constexpr explicit Address(std::uint32_t value) : value_(value) {}
  constexpr Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  /// Parse "a.b.c.d"; throws std::invalid_argument on malformed input.
  static Address parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string toString() const;

  constexpr auto operator<=>(const Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix (address + mask length).
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Address base, int length)
      : base_(Address{length == 0 ? 0u : (base.value() & mask(length))}), length_(length) {}

  /// Parse "a.b.c.d/len".
  static Prefix parse(std::string_view text);

  [[nodiscard]] constexpr bool contains(Address a) const {
    if (length_ == 0) return true;
    return (a.value() & mask(length_)) == base_.value();
  }
  [[nodiscard]] constexpr Address base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] std::string toString() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
  }
  Address base_;
  int length_ = 0;
};

enum class Protocol : std::uint8_t { kTcp, kUdp };

[[nodiscard]] constexpr std::string_view toString(Protocol p) {
  return p == Protocol::kTcp ? "tcp" : "udp";
}

/// Connection 5-tuple; the unit of flow identity everywhere (firewall
/// sessions, IDS verdicts, OpenFlow matches, TCP demux).
struct FlowKey {
  Address src;
  Address dst;
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  Protocol proto = Protocol::kTcp;

  constexpr auto operator<=>(const FlowKey&) const = default;

  /// The same flow seen from the other direction.
  [[nodiscard]] constexpr FlowKey reversed() const {
    return FlowKey{dst, src, dstPort, srcPort, proto};
  }

  [[nodiscard]] std::string toString() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(k.src.value());
    mix(k.dst.value());
    mix((std::uint64_t{k.srcPort} << 32) | k.dstPort);
    mix(static_cast<std::uint64_t>(k.proto));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace scidmz::net
