#include "net/device.hpp"

#include <algorithm>

#include "net/link.hpp"

namespace scidmz::net {

Interface::Interface(Context& ctx, Device& owner, int index, sim::DataSize egressBuffer)
    : ctx_(ctx), owner_(owner), index_(index), queue_(egressBuffer) {}

void Interface::attachLink(Link& link, int end) {
  link_ = &link;
  end_ = end;
}

sim::DataRate Interface::rate() const {
  return link_ ? link_->rate() : sim::DataRate::zero();
}

void Interface::send(Packet packet) {
  if (link_ == nullptr) {
    ++owner_.stats().dropsOther;
    return;
  }
  if (!queue_.tryEnqueue(ctx_.now(), std::move(packet))) return;  // drop counted by queue
  if (!transmitting_) startNextTransmission();
}

void Interface::startNextTransmission() {
  auto next = queue_.dequeue(ctx_.now());
  if (!next) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const auto txTime = link_->rate().transmissionTime(next->wireSize());
  ++stats_.txPackets;
  stats_.txBytes += next->wireSize();
  // Move the packet into the completion event; when serialization is done,
  // hand it to the link and immediately start on the next queued packet.
  ctx_.sim().schedule(txTime, [this, pkt = std::move(*next)]() mutable {
    link_->transmitComplete(end_, std::move(pkt));
    startNextTransmission();
  });
}

Device::Device(Context& ctx, std::string name) : ctx_(ctx), name_(std::move(name)) {}

Interface& Device::addInterface(sim::DataSize egressBuffer) {
  interfaces_.push_back(std::make_unique<Interface>(
      ctx_, *this, static_cast<int>(interfaces_.size()), egressBuffer));
  return *interfaces_.back();
}

void Device::addRoute(Prefix prefix, int ifIndex) {
  routes_.push_back(RouteEntry{prefix, ifIndex});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const RouteEntry& a, const RouteEntry& b) {
                     return a.prefix.length() > b.prefix.length();
                   });
}

void Device::clearRoutes() { routes_.clear(); }

std::optional<int> Device::lookupRoute(Address dst) const {
  for (const auto& entry : routes_) {
    if (entry.prefix.contains(dst)) return entry.ifIndex;
  }
  return std::nullopt;
}

void Device::forward(Packet packet) {
  if (packet.ttl == 0) {
    ++stats_.dropsTtl;
    return;
  }
  packet.ttl--;
  const auto egress = lookupRoute(packet.flow.dst);
  if (!egress) {
    ++stats_.dropsNoRoute;
    ctx_.log().log(ctx_.now(), sim::LogLevel::kDebug, name(),
                   "no route to " + packet.flow.dst.toString());
    return;
  }
  interface(static_cast<std::size_t>(*egress)).send(std::move(packet));
}

}  // namespace scidmz::net
