#include "net/device.hpp"

#include <algorithm>
#include <string>

#include "net/codec.hpp"
#include "net/link.hpp"
#include "net/trace.hpp"

namespace scidmz::net {

Interface::Interface(Context& ctx, Device& owner, int index, sim::DataSize egressBuffer)
    : ctx_(ctx), owner_(owner), index_(index), queue_(egressBuffer) {}

void Interface::attachLink(Link& link, int end) {
  link_ = &link;
  end_ = end;
}

sim::DataRate Interface::rate() const {
  return link_ ? link_->rate() : sim::DataRate::zero();
}

void Interface::initTelemetry() {
  auto& tel = ctx_.telemetry();
  const std::string base = owner_.name() + "/if" + std::to_string(index_);
  tel_point_ = tel.recorder().internPoint(base);
  tel_drops_ = &tel.metrics().counter("queue/" + base + "/drops");
  tel.addSampler("queue/" + base + "/depth_bytes",
                 [this] { return static_cast<double>(queue_.depth().byteCount()); });
  // Utilization over the last sampling interval: bits transmitted since the
  // previous tick divided by what the link could have carried. The
  // accumulator lives in Interface members (not lambda captures) so a
  // snapshot carries it and a restored run's next sample sees the same
  // baseline.
  tel.addSampler("link/" + base + "/utilization", [this]() {
    const std::int64_t nowNs = ctx_.now().ns();
    const std::uint64_t bytes = stats_.txBytes.byteCount();
    const auto dBytes = static_cast<double>(bytes - util_last_bytes_);
    const auto dNs = static_cast<double>(nowNs - util_last_ns_);
    util_last_bytes_ = bytes;
    util_last_ns_ = nowNs;
    const std::uint64_t bps = link_ != nullptr ? link_->rate().bps() : 0;
    if (dNs <= 0.0 || bps == 0) return 0.0;
    return dBytes * 8.0 * 1e9 / (dNs * static_cast<double>(bps));
  });
  tel_init_ = true;
}

void Interface::send(PacketRef packet) {
  if (link_ == nullptr) {
    ++owner_.stats().dropsOther;
    return;
  }
  auto& tel = ctx_.telemetry();
  const bool traced = tel.enabled();
  telemetry::FlightEvent ev;
  if (traced) {
    if (!tel_init_) initTelemetry();
    ev = makeFlightEvent(ctx_.now(), *packet);
    ev.point = tel_point_;
  }
  const bool accepted = queue_.tryEnqueue(ctx_.now(), std::move(packet));
  if (traced) {
    ev.kind = accepted ? telemetry::FlightEventKind::kEnqueue : telemetry::FlightEventKind::kDrop;
    ev.aux2 = queue_.depth().byteCount();
    if (!accepted) ++*tel_drops_;
    tel.recorder().record(ev);
  }
  if (!accepted) return;  // drop counted by queue (and telemetry when enabled)
  if (!transmitting_) startNextTransmission();
}

void Interface::startNextTransmission() {
  auto next = queue_.dequeue(ctx_.now());
  if (!next) {
    transmitting_ = false;
    return;
  }
  auto& tel = ctx_.telemetry();
  if (tel.enabled()) {
    if (!tel_init_) initTelemetry();
    telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *next);
    ev.kind = telemetry::FlightEventKind::kDequeue;
    ev.point = tel_point_;
    ev.aux2 = queue_.depth().byteCount();
    tel.recorder().record(ev);
  }
  transmitting_ = true;
  // Serialization runs at the residual rate after fluid-flow demand; with
  // no fluid load this is exactly the configured link rate.
  const auto txTime = link_->effectiveRate(end_).transmissionTime(next->wireSize());
  ++stats_.txPackets;
  stats_.txBytes += next->wireSize();
  if (ctx_.snapshotsArmed()) tx_pkt_ = *next;
  // Move the handle into the completion event; when serialization is done,
  // hand it to the link and immediately start on the next queued packet.
  const auto id = ctx_.sim().schedule(txTime, [this, pkt = std::move(next)]() mutable {
    link_->transmitComplete(end_, std::move(pkt));
    startNextTransmission();
  });
  if (ctx_.snapshotsArmed()) tx_event_ = id;
}

std::uint64_t Interface::serialize(sim::Codec& c) {
  c.vu64(stats_.txPackets);
  sim::codecSize(c, stats_.txBytes);
  c.vu64(util_last_bytes_);
  c.vi64(util_last_ns_);
  queue_.serialize(c, ctx_.pool());
  bool tx = transmitting_;
  c.b(tx);
  if (!c.writing()) transmitting_ = tx;
  if (!tx) return 0;
  if (c.writing()) {
    // tx_event_/tx_pkt_ are only maintained while snapshots are armed; the
    // orchestrator refuses to snapshot an unarmed context before we get here.
    auto key = ctx_.sim().eventKey(tx_event_);
    bool valid = key.valid;
    sim::SimTime at = key.at;
    std::uint64_t seq = key.seq;
    c.b(valid);
    sim::codecTime(c, at);
    c.vu64(seq);
    codecPacket(c, tx_pkt_);
  } else {
    bool valid = false;
    sim::SimTime at = sim::SimTime::zero();
    std::uint64_t seq = 0;
    c.b(valid);
    sim::codecTime(c, at);
    c.vu64(seq);
    Packet p;
    codecPacket(c, p);
    if (!valid) {
      c.reader().markFailed();
      return 0;
    }
    tx_pkt_ = p;
    PacketRef ref = ctx_.pool().acquire(std::move(p));
    tx_event_ = ctx_.sim().restoreSchedule(
        at, seq, [this, pkt = std::move(ref)]() mutable {
          link_->transmitComplete(end_, std::move(pkt));
          startNextTransmission();
        });
  }
  return 1;
}

Device::Device(Context& ctx, std::string name) : ctx_(ctx), name_(std::move(name)) {}

Interface& Device::addInterface(sim::DataSize egressBuffer) {
  interfaces_.push_back(std::make_unique<Interface>(
      ctx_, *this, static_cast<int>(interfaces_.size()), egressBuffer));
  return *interfaces_.back();
}

void Device::addRoute(Prefix prefix, int ifIndex) {
  routes_.push_back(RouteEntry{prefix, ifIndex});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const RouteEntry& a, const RouteEntry& b) {
                     return a.prefix.length() > b.prefix.length();
                   });
  fib_compiled_ = false;
  ++route_generation_;
}

void Device::clearRoutes() {
  routes_.clear();
  fib_compiled_ = false;
  ++route_generation_;
}

void Device::compileFib() const {
  fib_exact_.clear();
  fib_prefixes_.clear();
  for (const auto& entry : routes_) {
    if (entry.prefix.length() == 32) {
      // emplace keeps the first-inserted route for a duplicate /32 — the
      // same winner the stable-sorted linear scan would pick.
      fib_exact_.emplace(entry.prefix.base().value(), entry.ifIndex);
    } else {
      fib_prefixes_.push_back(entry);  // already in descending-length order
    }
  }
  fib_compiled_ = true;
}

std::optional<int> Device::lookupRoute(Address dst) const {
  if (!fib_compiled_) compileFib();
  const std::uint32_t a = dst.value();
  FlowCacheSlot& slot = flow_cache_[(a * 0x9E3779B9u) >> 24];
  if (slot.generation == route_generation_ && slot.dst == a) {
    if (slot.ifIndex < 0) return std::nullopt;
    return slot.ifIndex;
  }
  int result = -1;
  if (const auto it = fib_exact_.find(a); it != fib_exact_.end()) {
    result = it->second;
  } else {
    for (const auto& entry : fib_prefixes_) {
      if (entry.prefix.contains(dst)) {
        result = entry.ifIndex;
        break;
      }
    }
  }
  slot = FlowCacheSlot{a, route_generation_, result};
  if (result < 0) return std::nullopt;
  return result;
}

void Device::forward(PacketRef packet) {
  if (packet->ttl == 0) {
    ++stats_.dropsTtl;
    auto& tel = ctx_.telemetry();
    if (tel.enabled()) {
      ++tel.metrics().counter("device/" + name() + "/drops_ttl_expired");
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kDrop;
      ev.point = tel.recorder().internPoint(name() + "/ttl_expired");
      tel.recorder().record(ev);
    }
    return;
  }
  packet->ttl--;
  const auto egress = lookupRoute(packet->flow.dst);
  if (!egress) {
    ++stats_.dropsNoRoute;
    auto& tel = ctx_.telemetry();
    if (tel.enabled()) {
      ++tel.metrics().counter("device/" + name() + "/drops_no_route");
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kDrop;
      ev.point = tel.recorder().internPoint(name() + "/no_route");
      tel.recorder().record(ev);
    }
    ctx_.log().log(ctx_.now(), sim::LogLevel::kDebug, name(),
                   "no route to " + packet->flow.dst.toString());
    return;
  }
  ctx_.countForwarded();
  interface(static_cast<std::size_t>(*egress)).send(std::move(packet));
}

std::uint64_t Device::serialize(sim::Codec& c) {
  stats_.serialize(c);
  // Interface count is structural: a mismatch means the rebuilt scenario
  // differs from the one snapshotted, so the blob is refused.
  std::uint64_t n = interfaces_.size();
  c.vu64(n);
  if (!c.writing() && n != interfaces_.size()) {
    c.reader().markFailed();
    return 0;
  }
  std::uint64_t claimed = 0;
  for (auto& iface : interfaces_) claimed += iface->serialize(c);
  return claimed;
}

}  // namespace scidmz::net
