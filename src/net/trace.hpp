// Bridging helpers between net types and the telemetry layer's POD views.
#pragma once

#include "net/address.hpp"
#include "net/packet.hpp"
#include "telemetry/flight_recorder.hpp"

namespace scidmz::net {

/// Flatten a 5-tuple for the flight recorder (IANA protocol numbers).
[[nodiscard]] inline telemetry::FlowRef toFlowRef(const FlowKey& key) {
  telemetry::FlowRef ref;
  ref.src = key.src.value();
  ref.dst = key.dst.value();
  ref.srcPort = key.srcPort;
  ref.dstPort = key.dstPort;
  ref.proto = key.proto == Protocol::kTcp ? 6 : 17;
  return ref;
}

/// Common fields of a packet-level trace event; caller fills kind/point/aux.
[[nodiscard]] inline telemetry::FlightEvent makeFlightEvent(sim::SimTime at,
                                                            const Packet& packet) {
  telemetry::FlightEvent ev;
  ev.at = at;
  ev.packetId = packet.id;
  ev.flow = toFlowRef(packet.flow);
  ev.bytes = static_cast<std::uint32_t>(packet.wireSize().byteCount());
  return ev;
}

}  // namespace scidmz::net
