#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "sim/domain.hpp"

namespace scidmz::net {

sim::DataRate PathTrace::bottleneckRate() const {
  sim::DataRate best = sim::DataRate::bitsPerSecond(std::numeric_limits<std::uint64_t>::max());
  for (const auto& hop : hops) {
    if (hop.link->rate() < best) best = hop.link->rate();
  }
  return hops.empty() ? sim::DataRate::zero() : best;
}

sim::Duration PathTrace::propagationDelay() const {
  sim::Duration total = sim::Duration::zero();
  for (const auto& hop : hops) total += hop.link->delay();
  return total;
}

std::vector<Device*> PathTrace::devices() const {
  std::vector<Device*> out;
  out.reserve(hops.size());
  for (const auto& hop : hops) out.push_back(hop.device);
  return out;
}

std::string PathTrace::toString() const {
  std::string s = src ? src->name() : "?";
  for (const auto& hop : hops) {
    s += " -> ";
    s += hop.device->name();
  }
  return s;
}

void Topology::configureShards(ShardConfig config) {
  if (!devices_.empty() || !links_.empty()) {
    throw std::runtime_error("configureShards: topology already has devices");
  }
  if (config.sharded == nullptr || config.domains.empty()) {
    throw std::runtime_error("configureShards: missing sharded simulator or domains");
  }
  for (const auto& [name, domain] : config.deviceDomain) {
    if (domain < 0 || domain >= static_cast<int>(config.domains.size())) {
      throw std::runtime_error("configureShards: domain out of range for " + name);
    }
  }
  shard_ = std::move(config);
}

Context& Topology::ctxForDevice(const std::string& name) const {
  if (shard_.sharded == nullptr) return ctx_;
  const auto it = shard_.deviceDomain.find(name);
  if (it == shard_.deviceDomain.end()) {
    throw std::runtime_error("sharded topology: device missing from domain map: " + name);
  }
  return *shard_.domains[static_cast<std::size_t>(it->second)];
}

void Topology::noteDomain(const Device& d, const std::string& name) {
  if (shard_.sharded == nullptr) return;
  device_domain_[&d] = shard_.deviceDomain.at(name);
}

int Topology::deviceDomain(const Device& d) const {
  const auto it = device_domain_.find(&d);
  return it == device_domain_.end() ? 0 : it->second;
}

Host& Topology::addHost(std::string name, Address address) {
  Context& ctx = ctxForDevice(name);
  auto host = std::make_unique<Host>(ctx, std::move(name), address);
  auto& ref = *host;
  devices_.push_back(std::move(host));
  noteDomain(ref, ref.name());
  return ref;
}

SwitchDevice& Topology::addSwitch(std::string name, SwitchProfile profile) {
  Context& ctx = ctxForDevice(name);
  auto dev = std::make_unique<SwitchDevice>(ctx, std::move(name), profile);
  auto& ref = *dev;
  devices_.push_back(std::move(dev));
  noteDomain(ref, ref.name());
  return ref;
}

RouterDevice& Topology::addRouter(std::string name, SwitchProfile profile) {
  Context& ctx = ctxForDevice(name);
  auto dev = std::make_unique<RouterDevice>(ctx, std::move(name), profile);
  auto& ref = *dev;
  devices_.push_back(std::move(dev));
  noteDomain(ref, ref.name());
  return ref;
}

FirewallDevice& Topology::addFirewall(std::string name, FirewallProfile profile) {
  Context& ctx = ctxForDevice(name);
  auto dev = std::make_unique<FirewallDevice>(ctx, std::move(name), profile);
  auto& ref = *dev;
  devices_.push_back(std::move(dev));
  noteDomain(ref, ref.name());
  return ref;
}

sim::DataSize Topology::defaultBuffer(const Device& d) {
  if (const auto* fw = dynamic_cast<const FirewallDevice*>(&d)) return fw->profile().egressBuffer;
  if (const auto* sw = dynamic_cast<const SwitchDevice*>(&d)) return sw->profile().egressBuffer;
  // Hosts: NIC ring + qdisc modeled as a deep local queue. A sender's own
  // window dumps serialize here and self-clock via ACKs (the kernel would
  // backpressure the socket); host-side loss belongs to the TCP layer's
  // socket-buffer caps, not the NIC.
  return sim::DataSize::gigabytes(1);
}

Link& Topology::connect(Device& a, Device& b, LinkParams params) {
  return connect(a, b, params, defaultBuffer(a), defaultBuffer(b));
}

Link& Topology::connect(Device& a, Device& b, LinkParams params, sim::DataSize bufferA,
                        sim::DataSize bufferB) {
  auto& ifA = a.addInterface(bufferA);
  auto& ifB = b.addInterface(bufferB);
  // a.ctx() == ctx_ when unsharded; under sharding an intra-domain link
  // must schedule into its own domain's simulator.
  links_.push_back(std::make_unique<Link>(a.ctx(), params, ifA, ifB));
  Link& link = *links_.back();
  if (shard_.sharded != nullptr) {
    const int da = deviceDomain(a);
    const int db = deviceDomain(b);
    if (params.delay >= shard_.lookaheadFloor) {
      // Cut-eligible: channel-route both directions regardless of whether
      // the partition separated the ends (partition invariance — the
      // channel ids and delivery keys depend only on construction order).
      const std::uint32_t chAB = shard_.sharded->addChannel(db, params.delay);
      const std::uint32_t chBA = shard_.sharded->addChannel(da, params.delay);
      link.setChannelMode(*shard_.sharded, chAB, chBA);
    } else if (da != db) {
      throw std::runtime_error("sharded topology: cross-domain link below the lookahead floor: " +
                               a.name() + " -> " + b.name());
    }
  }
  return link;
}

void Topology::computeRoutes() {
  // Adjacency: device -> (neighbor, local egress interface index).
  std::unordered_map<Device*, std::vector<std::pair<Device*, int>>> adj;
  for (const auto& link : links_) {
    Interface& a = link->end(0);
    Interface& b = link->end(1);
    adj[&a.owner()].emplace_back(&b.owner(), a.index());
    adj[&b.owner()].emplace_back(&a.owner(), b.index());
  }

  for (const auto& devPtr : devices_) devPtr->clearRoutes();

  // BFS from each host; every device on a shortest path toward the host
  // gets a /32 route via the interface that BFS arrived through.
  for (const auto& destPtr : devices_) {
    auto* dest = dynamic_cast<Host*>(destPtr.get());
    if (dest == nullptr) continue;
    const Prefix hostPrefix{dest->address(), 32};

    std::unordered_map<Device*, int> dist;
    std::deque<Device*> frontier;
    dist[dest] = 0;
    frontier.push_back(dest);
    while (!frontier.empty()) {
      Device* cur = frontier.front();
      frontier.pop_front();
      for (const auto& [nbr, nbrIf] : adj[cur]) {
        (void)nbrIf;
        if (dist.count(nbr)) continue;
        dist[nbr] = dist[cur] + 1;
        frontier.push_back(nbr);
      }
    }
    for (const auto& devPtr : devices_) {
      Device* dev = devPtr.get();
      if (dev == dest || !dist.count(dev)) continue;
      // Pick the neighbor one step closer to the destination; ties break by
      // adjacency order, which is insertion (= link creation) order, so
      // routing is deterministic.
      for (const auto& [nbr, localIf] : adj[dev]) {
        const auto it = dist.find(nbr);
        if (it != dist.end() && it->second == dist[dev] - 1) {
          dev->addRoute(hostPrefix, localIf);
          break;
        }
      }
    }
  }

  // Compile every device's FIB now so the route-churn cost is paid here,
  // at (re)configuration time, and the first forwarded packet after a
  // recompute doesn't eat the compile.
  for (const auto& devPtr : devices_) devPtr->finalizeRoutes();
}

Host* Topology::findHost(Address address) const {
  for (const auto& devPtr : devices_) {
    if (auto* host = dynamic_cast<Host*>(devPtr.get()); host && host->address() == address) {
      return host;
    }
  }
  return nullptr;
}

Device* Topology::findDevice(std::string_view name) const {
  for (const auto& devPtr : devices_) {
    if (devPtr->name() == name) return devPtr.get();
  }
  return nullptr;
}

std::optional<PathTrace> Topology::trace(Address src, Address dst) const {
  Host* from = findHost(src);
  Host* to = findHost(dst);
  if (from == nullptr || to == nullptr) return std::nullopt;

  PathTrace path;
  path.src = from;
  Device* cur = from;
  for (std::size_t guard = 0; guard < devices_.size() + 1; ++guard) {
    if (cur == to) {
      path.dst = to;
      return path;
    }
    const auto egress = cur->lookupRoute(dst);
    if (!egress) return std::nullopt;
    Interface& out = cur->interface(static_cast<std::size_t>(*egress));
    if (!out.attached()) return std::nullopt;
    Link* link = out.link();
    Device* next = &link->peer(out.linkEnd()).owner();
    path.hops.push_back(PathHop{link, next});
    cur = next;
  }
  return std::nullopt;  // routing loop
}

}  // namespace scidmz::net
