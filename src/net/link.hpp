// Point-to-point link: serialization rate, propagation delay, MTU and an
// optional impairment (loss) model per direction.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/context.hpp"
#include "net/loss.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/codec.hpp"
#include "sim/event_queue.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {
class ShardedSimulator;
}

namespace scidmz::net {

class Interface;

struct LinkParams {
  sim::DataRate rate = sim::DataRate::gigabitsPerSecond(10);
  sim::Duration delay = sim::Duration::microseconds(5);
  sim::DataSize mtu = sim::DataSize::bytes(1500);
};

class Link {
 public:
  Link(Context& ctx, LinkParams params, Interface& endA, Interface& endB);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] sim::DataRate rate() const { return params_.rate; }
  [[nodiscard]] sim::Duration delay() const { return params_.delay; }
  [[nodiscard]] sim::DataSize mtu() const { return params_.mtu; }

  /// Install an impairment model for packets leaving `fromEnd` (0 or 1).
  void setLossModel(int fromEnd, std::unique_ptr<LossModel> model);
  /// Remove impairments in both directions (the "repair" operation in the
  /// soft-failure troubleshooting scenarios).
  void repair();

  /// Called by the transmitting Interface when serialization finishes;
  /// applies loss and schedules delivery to the far end after propagation.
  /// Takes ownership of the handle; a lost packet's slot recycles here.
  void transmitComplete(int fromEnd, PacketRef packet);

  /// Sharded execution: route deliveries through per-direction boundary
  /// channels of `sharded` instead of scheduling directly. Applied to every
  /// cut-eligible link (delay >= the lookahead floor) at every domain
  /// count — including links whose ends landed in the same domain — so the
  /// event interleaving is a property of the topology, not the partition.
  /// Incompatible with armed snapshots.
  void setChannelMode(sim::ShardedSimulator& sharded, std::uint32_t channelAtoB,
                      std::uint32_t channelBtoA) {
    sharded_ = &sharded;
    channel_[0] = channelAtoB;
    channel_[1] = channelBtoA;
  }
  [[nodiscard]] bool channelMode() const { return sharded_ != nullptr; }

  /// Aggregate analytic-flow demand traversing this direction (wire bits/s),
  /// published by tcp::FluidEngine each tick. Packet serialization in this
  /// direction runs at effectiveRate(), which is how fluid flows press on
  /// packet flows sharing the hop.
  void setFluidDemand(int fromEnd, sim::DataRate demand) { fluid_demand_[fromEnd & 1] = demand; }
  [[nodiscard]] sim::DataRate fluidDemand(int fromEnd) const { return fluid_demand_[fromEnd & 1]; }

  /// Serialization rate left for packet traffic in this direction: exactly
  /// rate() when no fluid demand is published (packet-only scenarios are
  /// bit-identical to a tree without fluid support), otherwise the residual
  /// capacity floored at 1% of rate() so saturating fluid load slows packet
  /// flows without stalling them outright.
  [[nodiscard]] sim::DataRate effectiveRate(int fromEnd) const {
    const std::uint64_t demand = fluid_demand_[fromEnd & 1].bps();
    if (demand == 0) return params_.rate;
    const std::uint64_t full = params_.rate.bps();
    std::uint64_t floor = full / 100;
    if (floor == 0) floor = 1;
    const std::uint64_t residual = full > demand ? full - demand : 0;
    return sim::DataRate::bitsPerSecond(residual > floor ? residual : floor);
  }

  /// Long-run drop probability of this direction's impairment model (0 when
  /// healthy), and whether drops are i.i.d. per packet. Consumed by the
  /// fluid response function and the kAuto fidelity rule.
  [[nodiscard]] double lossRate(int fromEnd) const {
    const auto& loss = loss_[fromEnd & 1];
    return loss ? loss->dropRate() : 0.0;
  }
  [[nodiscard]] bool lossMemoryless(int fromEnd) const {
    const auto& loss = loss_[fromEnd & 1];
    return !loss || loss->memoryless();
  }

  [[nodiscard]] Interface& end(int which) const { return which == 0 ? endA_ : endB_; }
  [[nodiscard]] Interface& peer(int fromEnd) const { return end(1 - fromEnd); }

  struct DirectionStats {
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    sim::DataSize bytesDelivered = sim::DataSize::zero();

    [[nodiscard]] double lossFraction() const {
      const auto total = delivered + lost;
      return total == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(total);
    }
  };
  [[nodiscard]] const DirectionStats& stats(int fromEnd) const { return stats_[fromEnd & 1]; }

  /// Snapshot/restore of mutable link state: per-direction stats, loss-model
  /// state, published fluid demand, and the packets currently in flight
  /// (propagating) with their original event keys. Requires snapshots to be
  /// armed on the owning Context from run start (Context::armSnapshots()).
  /// Returns the number of pending delivery events this link accounts for.
  std::uint64_t serialize(sim::Codec& c);

 private:
  /// Lazily interned per-direction emit point + cached counters.
  struct DirTelemetry {
    bool init = false;
    std::uint32_t point = 0;
    std::uint64_t* lost = nullptr;
    std::uint64_t* delivered = nullptr;
  };
  void initTelemetry(int dir);

  /// A packet propagating in one direction: the delivery event's id (to
  /// recover its (at, seq) key at snapshot time) plus a copy of the packet.
  /// Propagation delay is per-direction constant, so deliveries fire in
  /// schedule order and the record is a FIFO popped on fire. Only populated
  /// while snapshots are armed.
  struct InFlight {
    sim::EventId id{};
    Packet packet;
  };

  Context& ctx_;
  LinkParams params_;
  Interface& endA_;
  Interface& endB_;
  sim::ShardedSimulator* sharded_ = nullptr;
  std::uint32_t channel_[2] = {0, 0};
  std::unique_ptr<LossModel> loss_[2];
  DirectionStats stats_[2];
  DirTelemetry tel_[2];
  sim::DataRate fluid_demand_[2];
  std::deque<InFlight> in_flight_[2];
};

}  // namespace scidmz::net
