// Point-to-point link: serialization rate, propagation delay, MTU and an
// optional impairment (loss) model per direction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/context.hpp"
#include "net/loss.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/units.hpp"

namespace scidmz::net {

class Interface;

struct LinkParams {
  sim::DataRate rate = sim::DataRate::gigabitsPerSecond(10);
  sim::Duration delay = sim::Duration::microseconds(5);
  sim::DataSize mtu = sim::DataSize::bytes(1500);
};

class Link {
 public:
  Link(Context& ctx, LinkParams params, Interface& endA, Interface& endB);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] sim::DataRate rate() const { return params_.rate; }
  [[nodiscard]] sim::Duration delay() const { return params_.delay; }
  [[nodiscard]] sim::DataSize mtu() const { return params_.mtu; }

  /// Install an impairment model for packets leaving `fromEnd` (0 or 1).
  void setLossModel(int fromEnd, std::unique_ptr<LossModel> model);
  /// Remove impairments in both directions (the "repair" operation in the
  /// soft-failure troubleshooting scenarios).
  void repair();

  /// Called by the transmitting Interface when serialization finishes;
  /// applies loss and schedules delivery to the far end after propagation.
  /// Takes ownership of the handle; a lost packet's slot recycles here.
  void transmitComplete(int fromEnd, PacketRef packet);

  [[nodiscard]] Interface& end(int which) const { return which == 0 ? endA_ : endB_; }
  [[nodiscard]] Interface& peer(int fromEnd) const { return end(1 - fromEnd); }

  struct DirectionStats {
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    sim::DataSize bytesDelivered = sim::DataSize::zero();

    [[nodiscard]] double lossFraction() const {
      const auto total = delivered + lost;
      return total == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(total);
    }
  };
  [[nodiscard]] const DirectionStats& stats(int fromEnd) const { return stats_[fromEnd & 1]; }

 private:
  /// Lazily interned per-direction emit point + cached counters.
  struct DirTelemetry {
    bool init = false;
    std::uint32_t point = 0;
    std::uint64_t* lost = nullptr;
    std::uint64_t* delivered = nullptr;
  };
  void initTelemetry(int dir);

  Context& ctx_;
  LinkParams params_;
  Interface& endA_;
  Interface& endB_;
  std::unique_ptr<LossModel> loss_[2];
  DirectionStats stats_[2];
  DirTelemetry tel_[2];
};

}  // namespace scidmz::net
