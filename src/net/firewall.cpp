#include "net/firewall.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "net/codec.hpp"
#include "net/trace.hpp"

namespace scidmz::net {

namespace {

[[nodiscard]] auto flowKeyTuple(const FlowKey& k) {
  return std::make_tuple(k.src.value(), k.dst.value(), k.srcPort, k.dstPort,
                         static_cast<int>(k.proto));
}

}  // namespace

void FirewallDevice::initTelemetry() {
  auto& tel = ctx_.telemetry();
  tel_point_ = tel.recorder().internPoint(name() + "/input");
  tel_drops_buffer_ = &tel.metrics().counter("firewall/" + name() + "/drops_input_buffer");
  tel_drops_policy_ = &tel.metrics().counter("firewall/" + name() + "/drops_policy");
  tel_drops_session_ = &tel.metrics().counter("firewall/" + name() + "/drops_session_table");
  tel_syns_rewritten_ = &tel.metrics().counter("firewall/" + name() + "/syns_rewritten");
  tel_inspected_ = &tel.metrics().counter("firewall/" + name() + "/inspected");
  tel.addSampler("firewall/" + name() + "/input_buffered_bytes",
                 [this] { return static_cast<double>(buffered_.byteCount()); });
  tel_init_ = true;
}

void FirewallDevice::receive(PacketRef packet, Interface& in) {
  notifyTap(*packet, in);
  ++stats_.rxPackets;
  stats_.rxBytes += packet->wireSize();

  auto& tel = ctx_.telemetry();
  const bool traced = tel.enabled();
  if (traced && !tel_init_) initTelemetry();

  // Vetted flows skip the inspection engines entirely (SDN bypass).
  if (bypass_.contains(packet->flow)) {
    forward(std::move(packet));
    return;
  }

  // Policy check. Denied packets are dropped before buffering.
  if (!policy_.permits(*packet)) {
    ++fw_stats_.dropsPolicy;
    ++stats_.dropsAcl;
    if (traced) {
      ++*tel_drops_policy_;
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kDrop;
      ev.point = tel_point_;
      tel.recorder().record(ev);
    }
    return;
  }

  // Session tracking: TCP flows occupy a session slot from the first packet
  // seen (SYN or mid-flow); a full table drops new flows.
  if (packet->flow.proto == Protocol::kTcp) {
    const auto forwardKey = packet->flow;
    if (sessions_.find(forwardKey) == sessions_.end() &&
        sessions_.find(forwardKey.reversed()) == sessions_.end()) {
      if (sessions_.size() >= profile_.sessionTableSize) {
        ++fw_stats_.dropsSessionTable;
        if (traced) {
          ++*tel_drops_session_;
          telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
          ev.kind = telemetry::FlightEventKind::kDrop;
          ev.point = tel_point_;
          tel.recorder().record(ev);
        }
        return;
      }
      sessions_.emplace(forwardKey, ctx_.now());
      fw_stats_.peakSessions = std::max(fw_stats_.peakSessions, sessions_.size());
    }
  }

  // TCP flow sequence checking rewrites the TCP header in place in its pool
  // slot; the side effect the paper documents is stripping the RFC 1323
  // window-scale option from SYNs.
  if (profile_.tcpSequenceChecking && packet->isTcp()) {
    auto& tcp = packet->tcp();
    if (tcp.flags.syn && tcp.windowScalePresent) {
      tcp.windowScalePresent = false;
      tcp.windowScale = 0;
      ++fw_stats_.synsRewritten;
      if (traced) ++*tel_syns_rewritten_;
    }
  }

  // Shared input buffer in front of the engines.
  const auto size = packet->wireSize();
  if (buffered_ + size > profile_.inputBuffer) {
    ++fw_stats_.dropsInputBuffer;
    if (traced) {
      ++*tel_drops_buffer_;
      telemetry::FlightEvent ev = makeFlightEvent(ctx_.now(), *packet);
      ev.kind = telemetry::FlightEventKind::kDrop;
      ev.point = tel_point_;
      ev.aux2 = buffered_.byteCount();
      tel.recorder().record(ev);
    }
    return;
  }
  buffered_ += size;

  // Dispatch to the flow's engine; completion = engine serialization after
  // any queued work, plus fixed inspection latency.
  const auto engineIndex = FlowKeyHash{}(packet->flow) % engines_.size();
  auto& engine = engines_[engineIndex];
  const auto start = std::max(ctx_.now(), engine.busyUntil);
  const auto done = start + profile_.engineRate.transmissionTime(size);
  engine.busyUntil = done;
  const auto releaseAt = done + profile_.inspectionDelay;
  ctx_.sim().scheduleAt(releaseAt, [this, pkt = std::move(packet)]() mutable {
    buffered_ -= pkt->wireSize();
    ++fw_stats_.inspected;
    if (ctx_.telemetry().enabled()) {
      if (!tel_init_) initTelemetry();
      ++*tel_inspected_;
    }
    forward(std::move(pkt));
  });
}

std::uint64_t FirewallDevice::serialize(sim::Codec& c) {
  std::uint64_t claimed = Device::serialize(c);
  c.vu64(fw_stats_.inspected);
  c.vu64(fw_stats_.dropsInputBuffer);
  c.vu64(fw_stats_.dropsPolicy);
  c.vu64(fw_stats_.dropsSessionTable);
  c.vu64(fw_stats_.synsRewritten);
  c.size(fw_stats_.peakSessions);
  std::uint64_t engineCount = engines_.size();
  c.vu64(engineCount);
  if (!c.writing() && engineCount != engines_.size()) {
    c.reader().markFailed();
    return claimed;
  }
  for (Engine& e : engines_) sim::codecTime(c, e.busyUntil);
  sim::codecSize(c, buffered_);
  // Session and bypass tables: unordered maps, written in sorted key order
  // so the snapshot bytes are independent of hash-table iteration order.
  std::uint64_t sessionCount = sessions_.size();
  c.vu64(sessionCount);
  if (c.writing()) {
    std::vector<std::pair<FlowKey, sim::SimTime>> rows(sessions_.begin(), sessions_.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return flowKeyTuple(a.first) < flowKeyTuple(b.first);
    });
    for (auto& [key, at] : rows) {
      FlowKey k = key;
      sim::SimTime t = at;
      codecFlowKey(c, k);
      sim::codecTime(c, t);
    }
  } else {
    sessions_.clear();
    for (std::uint64_t i = 0; i < sessionCount && c.ok(); ++i) {
      FlowKey k;
      sim::SimTime t = sim::SimTime::zero();
      codecFlowKey(c, k);
      sim::codecTime(c, t);
      sessions_.emplace(k, t);
    }
  }
  std::uint64_t bypassCount = bypass_.map.size();
  c.vu64(bypassCount);
  if (c.writing()) {
    std::vector<FlowKey> keys;
    keys.reserve(bypass_.map.size());
    for (const auto& [key, unused] : bypass_.map) keys.push_back(key);
    std::sort(keys.begin(), keys.end(), [](const FlowKey& a, const FlowKey& b) {
      return flowKeyTuple(a) < flowKeyTuple(b);
    });
    for (FlowKey& k : keys) codecFlowKey(c, k);
  } else {
    bypass_.clear();
    for (std::uint64_t i = 0; i < bypassCount && c.ok(); ++i) {
      FlowKey k;
      codecFlowKey(c, k);
      bypass_.map.emplace(k, 0);
    }
  }
  // Runtime policy toggle (the Penn State fix flips it mid-scenario).
  c.b(profile_.tcpSequenceChecking);
  return claimed;
}

}  // namespace scidmz::net
