#include "net/flow.hpp"

#include "net/firewall.hpp"
#include "net/host.hpp"
#include "net/link.hpp"

namespace scidmz::net {

const char* toString(FlowFidelity fidelity) {
  switch (fidelity) {
    case FlowFidelity::kPacket: return "packet";
    case FlowFidelity::kFluid: return "fluid";
    case FlowFidelity::kAuto: return "auto";
  }
  return "packet";
}

std::optional<FlowFidelity> parseFlowFidelity(std::string_view text) {
  if (text == "packet") return FlowFidelity::kPacket;
  if (text == "fluid") return FlowFidelity::kFluid;
  if (text == "auto") return FlowFidelity::kAuto;
  return std::nullopt;
}

FlowPath traceFlowPath(Host& src, Host& dst) {
  FlowPath path;
  Device* device = &src;
  const Address dstAddr = dst.address();
  double survival = 1.0;
  // Bounded walk: a routing loop or dead end yields an incomplete path.
  for (int ttl = 0; ttl < 64; ++ttl) {
    if (device == &dst) {
      path.lossRate = 1.0 - survival;
      return path;
    }
    auto egress = device->lookupRoute(dstAddr);
    // Hosts are single-homed and transmit on interface 0 regardless of
    // routing tables (Host::send); mirror that here.
    if (!egress && device->interfaceCount() == 1) egress = 0;
    if (!egress) break;
    Interface& out = device->interface(static_cast<std::size_t>(*egress));
    Link* link = out.link();
    if (link == nullptr) break;
    const int end = out.linkEnd();
    path.hops.emplace_back(link, end);
    path.oneWayDelay += link->delay();
    if (path.bottleneck.bps() == 0 || link->rate() < path.bottleneck) {
      path.bottleneck = link->rate();
    }
    survival *= 1.0 - link->lossRate(end);
    if (!link->lossMemoryless(end)) path.memorylessLoss = false;
    Device& next = link->peer(end).owner();
    if (dynamic_cast<FirewallDevice*>(&next) != nullptr) path.crossesFirewall = true;
    device = &next;
  }
  path.hops.clear();
  path.oneWayDelay = sim::Duration::zero();
  path.bottleneck = sim::DataRate::zero();
  path.lossRate = 0.0;
  path.memorylessLoss = true;
  path.crossesFirewall = false;
  return path;
}

namespace {
std::optional<FlowFidelity>& processOverrideSlot() {
  static std::optional<FlowFidelity> slot;
  return slot;
}
}  // namespace

void setProcessFidelityOverride(std::optional<FlowFidelity> fidelity) {
  processOverrideSlot() = fidelity;
}

std::optional<FlowFidelity> processFidelityOverride() { return processOverrideSlot(); }

FlowFactory::FlowFactory() : override_(processFidelityOverride()) {}

FlowFidelity FlowFactory::resolve(Host& src, Host& dst, const Options& options) const {
  FlowFidelity fidelity =
      options.pinned ? options.fidelity : override_.value_or(options.fidelity);
  if (fidelity != FlowFidelity::kAuto) return fidelity;
  const FlowPath path = traceFlowPath(src, dst);
  // Fluid only where the analytic model's assumptions hold: a routable path
  // with no stateful middlebox and only memoryless (i.i.d.) loss.
  if (path.complete() && !path.crossesFirewall && path.memorylessLoss) {
    return FlowFidelity::kFluid;
  }
  return FlowFidelity::kPacket;
}

}  // namespace scidmz::net
