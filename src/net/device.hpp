// Device base class: anything with interfaces and a forwarding table.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/context.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/codec.hpp"
#include "sim/event_queue.hpp"
#include "sim/units.hpp"

namespace scidmz::net {

class Device;
class Link;

/// A device port: owns the egress drop-tail queue and the transmit state
/// machine for its attached link direction.
class Interface {
 public:
  Interface(Context& ctx, Device& owner, int index, sim::DataSize egressBuffer);

  Interface(const Interface&) = delete;
  Interface& operator=(const Interface&) = delete;

  void attachLink(Link& link, int end);
  [[nodiscard]] bool attached() const { return link_ != nullptr; }
  [[nodiscard]] Link* link() const { return link_; }
  [[nodiscard]] int linkEnd() const { return end_; }

  /// Enqueue for transmission; drops (with stats) if the egress buffer is
  /// full or no link is attached. Consumes the handle either way.
  void send(PacketRef packet);

  [[nodiscard]] sim::DataRate rate() const;
  [[nodiscard]] Device& owner() const { return owner_; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] DropTailQueue& queue() { return queue_; }
  [[nodiscard]] const DropTailQueue& queue() const { return queue_; }

  struct Stats {
    std::uint64_t txPackets = 0;
    sim::DataSize txBytes = sim::DataSize::zero();
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Snapshot/restore: tx stats, utilization-probe accumulator, the egress
  /// queue contents, and (when mid-serialization) the in-flight tx-complete
  /// event re-armed under its original key. Returns the number of pending
  /// events claimed (0 or 1).
  std::uint64_t serialize(sim::Codec& c);

 private:
  void startNextTransmission();
  /// Lazily interns this port's emit point, caches its drop counter, and
  /// registers the queue-depth and link-utilization probes. Called on the
  /// first packet seen with telemetry enabled, so uninstrumented runs pay
  /// nothing and emit points appear in deterministic (traffic) order.
  void initTelemetry();

  Context& ctx_;
  Device& owner_;
  int index_;
  DropTailQueue queue_;
  Link* link_ = nullptr;
  int end_ = 0;
  bool transmitting_ = false;
  Stats stats_;
  bool tel_init_ = false;
  std::uint32_t tel_point_ = 0;
  std::uint64_t* tel_drops_ = nullptr;
  // Utilization-sampler accumulator (bytes/time at the previous sample).
  // Members rather than lambda captures so snapshots can carry them — a
  // restored run's first utilization sample must see the same baseline.
  std::uint64_t util_last_bytes_ = 0;
  std::int64_t util_last_ns_ = 0;
  // In-flight tx-complete record, maintained only while snapshots are armed:
  // at most one serialization completes per port, so a single slot suffices.
  sim::EventId tx_event_{};
  Packet tx_pkt_{};
};

struct DeviceStats {
  std::uint64_t rxPackets = 0;
  sim::DataSize rxBytes = sim::DataSize::zero();
  std::uint64_t dropsNoRoute = 0;
  std::uint64_t dropsTtl = 0;
  std::uint64_t dropsAcl = 0;
  std::uint64_t dropsOther = 0;

  void serialize(sim::Codec& c) {
    c.vu64(rxPackets);
    sim::codecSize(c, rxBytes);
    c.vu64(dropsNoRoute);
    c.vu64(dropsTtl);
    c.vu64(dropsAcl);
    c.vu64(dropsOther);
  }
};

/// Base class for hosts, switches, routers and firewalls.
class Device {
 public:
  Device(Context& ctx, std::string name);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Add a port with the given egress buffer. Returns the new interface.
  Interface& addInterface(sim::DataSize egressBuffer);

  /// Packet arrives from the wire on `in`. Called by Link. Takes ownership.
  virtual void receive(PacketRef packet, Interface& in) = 0;

  /// Longest-prefix-match route installation / lookup. Lookups hit a
  /// compiled FIB — an exact-match table for /32 routes (the common case:
  /// Topology::computeRoutes installs host routes only) plus a short
  /// descending-length scan for wider prefixes — fronted by a per-device
  /// flow cache. Any route mutation bumps the generation stamp, which
  /// invalidates the cache and forces a recompile on next lookup.
  void addRoute(Prefix prefix, int ifIndex);
  void clearRoutes();
  [[nodiscard]] std::optional<int> lookupRoute(Address dst) const;
  /// Compile the FIB now instead of lazily on first lookup. Called by
  /// Topology::computeRoutes so route churn costs are paid at (re)config
  /// time, never mid-traffic.
  void finalizeRoutes() const { if (!fib_compiled_) compileFib(); }
  /// Monotonic stamp bumped on every addRoute/clearRoutes; flow-cache
  /// entries from older generations never match.
  [[nodiscard]] std::uint64_t routeGeneration() const { return route_generation_; }
  [[nodiscard]] bool fibCompiled() const { return fib_compiled_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Context& ctx() { return ctx_; }
  [[nodiscard]] std::size_t interfaceCount() const { return interfaces_.size(); }
  [[nodiscard]] Interface& interface(std::size_t i) { return *interfaces_.at(i); }
  [[nodiscard]] const Interface& interface(std::size_t i) const { return *interfaces_.at(i); }

  [[nodiscard]] DeviceStats& stats() { return stats_; }
  [[nodiscard]] const DeviceStats& stats() const { return stats_; }

  /// Passive monitoring tap (IDS, debugging): sees every packet the device
  /// receives, before any forwarding decision. Zero data-path cost.
  using Tap = std::function<void(const Packet&, const Interface&)>;
  void setTap(Tap tap) { tap_ = std::move(tap); }

  /// Snapshot/restore of mutable device state: stats plus every interface.
  /// Routes, the compiled FIB and the flow cache are derived state, rebuilt
  /// by scenario reconstruction. Subclasses with extra mutable state
  /// (Switch defect latch, Host ephemeral-port counter) override and chain.
  /// Returns the number of pending events claimed by this device.
  virtual std::uint64_t serialize(sim::Codec& c);

 protected:
  void notifyTap(const Packet& packet, const Interface& in) {
    if (tap_) tap_(packet, in);
  }

  /// Route `packet` by destination and enqueue on the egress interface.
  /// Decrements TTL; drops on TTL expiry or missing route (counted and
  /// telemetry-tagged separately).
  void forward(PacketRef packet);

  Context& ctx_;
  DeviceStats stats_;

 private:
  struct RouteEntry {
    Prefix prefix;
    int ifIndex;
  };

  /// One direct-mapped flow-cache slot. `generation` from before the last
  /// route change never equals route_generation_, so stale hits are
  /// structurally impossible; ifIndex -1 caches a negative lookup.
  struct FlowCacheSlot {
    std::uint32_t dst = 0;
    std::uint64_t generation = 0;
    int ifIndex = -1;
  };
  static constexpr std::size_t kFlowCacheSlots = 256;

  void compileFib() const;

  std::string name_;
  std::vector<std::unique_ptr<Interface>> interfaces_;
  std::vector<RouteEntry> routes_;  // kept sorted by descending prefix length
  // Compiled forwarding state; mutable so lookupRoute stays const for
  // read-only callers (Topology::trace). Generation starts at 1 so
  // zero-initialized cache slots can never match.
  mutable bool fib_compiled_ = false;
  mutable std::unordered_map<std::uint32_t, int> fib_exact_;
  mutable std::vector<RouteEntry> fib_prefixes_;
  mutable std::array<FlowCacheSlot, kFlowCacheSlots> flow_cache_{};
  std::uint64_t route_generation_ = 1;
  Tap tap_;
};

}  // namespace scidmz::net
