// Topology: the container that owns devices and links, computes routing
// tables, and answers path queries (hop lists, bottleneck, loss budget) —
// the raw material the Science DMZ design-pattern library reasons over.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/context.hpp"
#include "net/device.hpp"
#include "net/firewall.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"

namespace scidmz::net {

/// One hop of a traced path: the link crossed and the device it leads to.
struct PathHop {
  Link* link = nullptr;
  Device* device = nullptr;  ///< Device at the far end of `link`.
};

/// A source-to-destination path through the topology.
struct PathTrace {
  Host* src = nullptr;
  Host* dst = nullptr;
  std::vector<PathHop> hops;  ///< First hop leaves src; last hop lands on dst.

  [[nodiscard]] bool complete() const { return dst != nullptr && !hops.empty(); }
  /// Lowest link rate along the path.
  [[nodiscard]] sim::DataRate bottleneckRate() const;
  /// Sum of propagation delays (one way).
  [[nodiscard]] sim::Duration propagationDelay() const;
  /// Devices traversed, excluding the source host.
  [[nodiscard]] std::vector<Device*> devices() const;
  [[nodiscard]] std::string toString() const;
};

/// Sharded construction plan: which Context (= domain) each named device is
/// built into, the lookahead floor that decides which links become boundary
/// channels, and the channel registry. Installed before any add*/connect.
struct ShardConfig {
  std::vector<Context*> domains;            ///< domain index -> per-domain Context
  std::map<std::string, int> deviceDomain;  ///< device name -> domain index
  sim::Duration lookaheadFloor = sim::Duration::milliseconds(1);
  sim::ShardedSimulator* sharded = nullptr;
};

class Topology {
 public:
  explicit Topology(Context& ctx) : ctx_(ctx) {}

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Arm sharded construction: subsequent factory calls build each device
  /// into its domain's Context, and connect() routes every link with
  /// delay >= the lookahead floor through boundary channels (at *every*
  /// domain count — see Link::setChannelMode). A cross-domain link below
  /// the floor is a partitioning bug and throws. Must be called on an
  /// empty topology.
  void configureShards(ShardConfig config);
  [[nodiscard]] bool sharded() const { return shard_.sharded != nullptr; }
  /// Domain a device was built into (0 when unsharded).
  [[nodiscard]] int deviceDomain(const Device& d) const;

  /// Factory helpers: the topology owns every device it creates.
  Host& addHost(std::string name, Address address);
  SwitchDevice& addSwitch(std::string name, SwitchProfile profile = SwitchProfile::scienceDmz());
  RouterDevice& addRouter(std::string name, SwitchProfile profile = SwitchProfile::scienceDmz());
  FirewallDevice& addFirewall(std::string name,
                              FirewallProfile profile = FirewallProfile::enterprise10G());

  /// Connect two devices with a new link, creating one interface on each
  /// side. Egress buffers default to each device's natural sizing: hosts
  /// get a large NIC ring, switches/routers their profile buffer.
  Link& connect(Device& a, Device& b, LinkParams params);
  Link& connect(Device& a, Device& b, LinkParams params, sim::DataSize bufferA,
                sim::DataSize bufferB);

  /// Recompute all forwarding tables via BFS over the device graph
  /// (host /32 routes on every device). Call after the topology is built
  /// and again after any structural change.
  void computeRoutes();

  /// Trace the routed path between two host addresses. Returns nullopt if
  /// either host is unknown or routing dead-ends.
  [[nodiscard]] std::optional<PathTrace> trace(Address src, Address dst) const;

  [[nodiscard]] Host* findHost(Address address) const;
  [[nodiscard]] Device* findDevice(std::string_view name) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  [[nodiscard]] Context& ctx() { return ctx_; }

 private:
  [[nodiscard]] static sim::DataSize defaultBuffer(const Device& d);
  /// The Context a device with this name is built into, per the shard plan.
  [[nodiscard]] Context& ctxForDevice(const std::string& name) const;
  void noteDomain(const Device& d, const std::string& name);

  Context& ctx_;
  ShardConfig shard_;
  std::unordered_map<const Device*, int> device_domain_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace scidmz::net
