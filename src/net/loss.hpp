// Link impairment models.
//
// Soft failures in the paper are dominated by loss that standard error
// counters miss: a failing line card dropping 1 of every 22,000 packets,
// dirty optics, etc. Each model decides per-packet whether the link eats it.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "sim/codec.hpp"
#include "sim/random.hpp"

namespace scidmz::net {

/// Per-packet drop decision. Implementations must be deterministic given
/// their seeded Rng and call order.
class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual bool shouldDrop(const Packet& packet) = 0;

  /// Long-run average drop probability — the `p` the fluid model's CC
  /// response function sees when analytic flows traverse this link.
  [[nodiscard]] virtual double dropRate() const { return 0.0; }
  /// True when drops are i.i.d. per packet, the regime the Mathis/TFRC
  /// equations assume. Bursty/patterned models return false, which steers
  /// `auto`-fidelity flows to packet-level simulation.
  [[nodiscard]] virtual bool memoryless() const { return false; }

  /// Snapshot/restore of mutable decision state (Rng position, burst
  /// state, periodic counters). Parameters (rates, intervals) are rebuilt
  /// by scenario reconstruction, not serialized. Stateless models inherit
  /// the no-op.
  virtual void serializeState(sim::Codec&) {}
};

/// Never drops. The default for healthy links.
class NoLoss final : public LossModel {
 public:
  bool shouldDrop(const Packet&) override { return false; }
  [[nodiscard]] bool memoryless() const override { return true; }
};

/// Independent random loss with fixed probability (dirty optics, marginal
/// transceivers).
class RandomLoss final : public LossModel {
 public:
  RandomLoss(double probability, sim::Rng rng) : p_(probability), rng_(rng) {}
  bool shouldDrop(const Packet&) override { return rng_.chance(p_); }
  [[nodiscard]] double dropRate() const override { return p_; }
  [[nodiscard]] bool memoryless() const override { return true; }
  void serializeState(sim::Codec& c) override { rng_.serialize(c); }

 private:
  double p_;
  sim::Rng rng_;
};

/// Drops exactly one packet out of every `interval` — the Section 2 failing
/// line card (1 / 22,000). Deterministic, independent of seed.
class PeriodicLoss final : public LossModel {
 public:
  explicit PeriodicLoss(std::uint64_t interval) : interval_(interval == 0 ? 1 : interval) {}
  bool shouldDrop(const Packet&) override {
    if (++count_ >= interval_) {
      count_ = 0;
      return true;
    }
    return false;
  }
  [[nodiscard]] double dropRate() const override {
    return 1.0 / static_cast<double>(interval_);
  }
  void serializeState(sim::Codec& c) override { c.vu64(count_); }

 private:
  std::uint64_t interval_;
  std::uint64_t count_ = 0;
};

/// Two-state Gilbert-Elliott burst loss: good state is loss-free, bad state
/// drops with `lossInBad`. Transition probabilities are evaluated per packet.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double pGoodToBad, double pBadToGood, double lossInBad, sim::Rng rng)
      : p_gb_(pGoodToBad), p_bg_(pBadToGood), loss_bad_(lossInBad), rng_(rng) {}

  bool shouldDrop(const Packet&) override {
    if (bad_) {
      if (rng_.chance(p_bg_)) bad_ = false;
    } else {
      if (rng_.chance(p_gb_)) bad_ = true;
    }
    return bad_ && rng_.chance(loss_bad_);
  }
  [[nodiscard]] double dropRate() const override {
    // Steady-state fraction of time in the bad state, times its loss rate.
    const double denom = p_gb_ + p_bg_;
    return denom <= 0.0 ? 0.0 : (p_gb_ / denom) * loss_bad_;
  }
  void serializeState(sim::Codec& c) override {
    rng_.serialize(c);
    c.b(bad_);
  }

 private:
  double p_gb_;
  double p_bg_;
  double loss_bad_;
  sim::Rng rng_;
  bool bad_ = false;
};

}  // namespace scidmz::net
