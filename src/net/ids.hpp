// Passive intrusion detection system.
//
// The appropriate-security pattern pairs router ACLs with an IDS that
// observes traffic out-of-band (a tap or span port), so detection adds no
// data-path latency or loss. The model watches flows through a device tap,
// classifies them against a watchlist, and can "vet" connections — the
// building block for the Section 7.3 OpenFlow IDS-then-bypass design.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/device.hpp"

namespace scidmz::net {

struct FlowObservation {
  std::uint64_t packets = 0;
  sim::DataSize bytes = sim::DataSize::zero();
  sim::SimTime firstSeen;
  sim::SimTime lastSeen;
  bool flagged = false;
  bool vetted = false;
};

class IntrusionDetectionSystem {
 public:
  /// Packets from flows matching the watchlist get flagged, never vetted.
  void addWatchlistPrefix(Prefix p) { watchlist_.push_back(p); }

  /// Number of connection-setup packets the IDS inspects before declaring a
  /// flow vetted (used by the SDN bypass controller).
  void setVettingPacketCount(std::uint64_t n) { vetting_packets_ = n; }

  /// Callback fired exactly once when a flow becomes vetted.
  using VettedCallback = std::function<void(const FlowKey&)>;
  void onVetted(VettedCallback cb) { vetted_cb_ = std::move(cb); }

  /// Callback fired exactly once when a flow is flagged as suspicious.
  using FlaggedCallback = std::function<void(const FlowKey&)>;
  void onFlagged(FlaggedCallback cb) { flagged_cb_ = std::move(cb); }

  /// Attach to a device's monitoring tap. One IDS can observe one device;
  /// observing several devices requires several IDS instances (as deployed
  /// in practice).
  void attachTo(Device& device) {
    device.setTap([this](const Packet& packet, const Interface&) { observe(packet); });
  }

  void observe(const Packet& packet) {
    auto& obs = flows_[packet.flow];
    ++obs.packets;
    obs.bytes += packet.wireSize();
    if (!obs.flagged) {
      for (const auto& p : watchlist_) {
        if (p.contains(packet.flow.src) || p.contains(packet.flow.dst)) {
          obs.flagged = true;
          if (flagged_cb_) flagged_cb_(packet.flow);
          break;
        }
      }
    }
    if (!obs.flagged && !obs.vetted && obs.packets >= vetting_packets_) {
      obs.vetted = true;
      if (vetted_cb_) vetted_cb_(packet.flow);
    }
  }

  [[nodiscard]] const FlowObservation* flow(const FlowKey& key) const {
    const auto it = flows_.find(key);
    return it == flows_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t observedFlowCount() const { return flows_.size(); }
  [[nodiscard]] std::size_t flaggedFlowCount() const {
    std::size_t n = 0;
    for (const auto& [key, obs] : flows_) {
      if (obs.flagged) ++n;
    }
    return n;
  }

 private:
  std::unordered_map<FlowKey, FlowObservation, FlowKeyHash> flows_;
  std::vector<Prefix> watchlist_;
  std::uint64_t vetting_packets_ = 3;
  VettedCallback vetted_cb_;
  FlaggedCallback flagged_cb_;
};

}  // namespace scidmz::net
