// Stateful firewall appliance model.
//
// Section 5 of the paper explains why firewalls break science flows even
// when their nominal aggregate throughput matches the interface speed:
// internally they fan packets out to a set of lower-speed inspection
// engines behind a small shared input buffer. Line-rate TCP bursts from a
// fast host overflow that buffer and the resulting loss collapses TCP.
//
// The model: each flow hashes to one of `engineCount` engines running at
// `engineRate`; packets queue in a shared byte-bounded input buffer; when
// the buffer is full, arrivals drop. An optional "TCP flow sequence
// checking" feature rewrites TCP SYN options, stripping window scaling —
// the documented Penn State / VTTI failure (a violation of RFC 1323).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/acl.hpp"
#include "net/device.hpp"
#include "net/link.hpp"

namespace scidmz::net {

struct FirewallProfile {
  /// Number of parallel inspection engines.
  int engineCount = 8;
  /// Per-engine processing rate. Aggregate = engineCount * engineRate.
  sim::DataRate engineRate = sim::DataRate::megabitsPerSecond(1250);
  /// Shared input buffer in front of the engines. Small by design: sized
  /// for the many-low-speed-flows business traffic profile.
  sim::DataSize inputBuffer = sim::DataSize::kibibytes(256);
  /// Fixed per-packet inspection latency on top of engine serialization.
  sim::Duration inspectionDelay = sim::Duration::microseconds(20);
  /// Maximum concurrent tracked sessions; SYNs beyond this are dropped.
  std::size_t sessionTableSize = 1'000'000;
  /// "TCP flow sequence checking": rewrites TCP headers, stripping the
  /// window-scale option from SYN segments (the Penn State setting).
  bool tcpSequenceChecking = false;
  /// Egress buffer for ports added via Topology helpers.
  sim::DataSize egressBuffer = sim::DataSize::mebibytes(4);

  /// A typical enterprise perimeter firewall with 10G interfaces: eight
  /// 1.25 Gbps engines, shallow input buffering, sequence checking on.
  static FirewallProfile enterprise10G() {
    FirewallProfile p;
    p.tcpSequenceChecking = true;
    return p;
  }

  /// A 1G branch firewall (NOAA-style FTP path).
  static FirewallProfile branch1G() {
    FirewallProfile p;
    p.engineCount = 4;
    p.engineRate = sim::DataRate::megabitsPerSecond(250);
    p.inputBuffer = sim::DataSize::kibibytes(128);
    p.tcpSequenceChecking = true;
    return p;
  }
};

struct FirewallStats {
  std::uint64_t inspected = 0;
  std::uint64_t dropsInputBuffer = 0;
  std::uint64_t dropsPolicy = 0;
  std::uint64_t dropsSessionTable = 0;
  std::uint64_t synsRewritten = 0;
  std::size_t peakSessions = 0;
};

class FirewallDevice : public Device {
 public:
  FirewallDevice(Context& ctx, std::string name,
                 FirewallProfile profile = FirewallProfile::enterprise10G())
      : Device(ctx, std::move(name)), profile_(profile) {
    engines_.resize(static_cast<std::size_t>(profile_.engineCount));
  }

  [[nodiscard]] const FirewallProfile& profile() const { return profile_; }
  [[nodiscard]] const FirewallStats& firewallStats() const { return fw_stats_; }

  /// Security policy evaluated per packet (permits establish sessions).
  void setPolicy(AclTable policy) { policy_ = std::move(policy); }
  [[nodiscard]] const AclTable& policy() const { return policy_; }

  /// The Penn State fix: disable TCP flow sequence checking at runtime.
  void setTcpSequenceChecking(bool on) { profile_.tcpSequenceChecking = on; }

  /// Flows granted a bypass skip the engines entirely (installed by the
  /// SDN controller after IDS vetting; see src/vc/openflow).
  void addBypass(const FlowKey& flow) {
    bypass_.insert(flow);
    bypass_.insert(flow.reversed());
  }
  void clearBypasses() { bypass_.clear(); }

  void receive(PacketRef packet, Interface& in) override;

  /// Snapshot/restore of the firewall's tables: engine busy horizons, the
  /// shared input-buffer occupancy, the session table, bypass entries and
  /// firewall stats (maps written in sorted key order for determinism).
  /// Packets inside the inspection pipeline are NOT claimed — their release
  /// events capture pool handles the snapshot layer cannot re-materialize
  /// yet — so a snapshot taken while the firewall has packets in flight is
  /// refused by the orchestrator's event accounting rather than silently
  /// losing them. Quiesce the firewall (or snapshot between bursts) first.
  std::uint64_t serialize(sim::Codec& c) override;

 private:
  struct Engine {
    sim::SimTime busyUntil = sim::SimTime::zero();
  };

  /// Lazily interns the input-stage emit point, caches drop/rewrite
  /// counters and registers the buffered-bytes probe.
  void initTelemetry();

  FirewallProfile profile_;
  AclTable policy_{AclAction::kPermit};
  FirewallStats fw_stats_;
  std::vector<Engine> engines_;
  sim::DataSize buffered_ = sim::DataSize::zero();
  std::unordered_map<FlowKey, sim::SimTime, FlowKeyHash> sessions_;

  bool tel_init_ = false;
  std::uint32_t tel_point_ = 0;
  std::uint64_t* tel_drops_buffer_ = nullptr;
  std::uint64_t* tel_drops_policy_ = nullptr;
  std::uint64_t* tel_drops_session_ = nullptr;
  std::uint64_t* tel_syns_rewritten_ = nullptr;
  std::uint64_t* tel_inspected_ = nullptr;

  /// Set of flows granted engine bypass.
  struct Bypass {
    std::unordered_map<FlowKey, char, FlowKeyHash> map;
    void insert(const FlowKey& k) { map.emplace(k, 0); }
    [[nodiscard]] bool contains(const FlowKey& k) const { return map.count(k) != 0; }
    void clear() { map.clear(); }
  } bypass_;
};

}  // namespace scidmz::net
