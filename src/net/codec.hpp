// Codec helpers for the net layer's value types: flow keys and whole
// packets. These are the building blocks of both the snapshot format
// (in-flight packets, queue contents) and the binary flight-recorder
// export; keeping them in one header guarantees every consumer agrees on
// the wire layout.
#pragma once

#include "net/packet.hpp"
#include "sim/codec.hpp"

namespace scidmz::net {

inline void codecFlowKey(sim::Codec& c, FlowKey& k) {
  std::uint32_t src = k.src.value();
  std::uint32_t dst = k.dst.value();
  c.u32(src);
  c.u32(dst);
  c.u16(k.srcPort);
  c.u16(k.dstPort);
  c.vint(k.proto);
  if (!c.writing()) {
    k.src = Address{src};
    k.dst = Address{dst};
  }
}

inline void codecTcpHeader(sim::Codec& c, TcpHeader& h) {
  c.vu64(h.seq);
  c.vu64(h.ackNo);
  c.b(h.flags.syn);
  c.b(h.flags.ack);
  c.b(h.flags.fin);
  c.b(h.flags.rst);
  c.u16(h.windowField);
  c.u8(h.windowScale);
  c.b(h.windowScalePresent);
  c.vu64(h.tsVal);
  c.vu64(h.tsEcho);
  c.vu64(h.sackHint);
  c.u8(h.sackCount);
  for (auto& block : h.sackBlocks) {
    c.vu64(block.start);
    c.vu64(block.end);
  }
}

inline void codecProbeHeader(sim::Codec& c, ProbeHeader& h) {
  c.vu32(h.streamId);
  c.vu64(h.seqNo);
  sim::codecTime(c, h.sentAt);
}

inline void codecRoceHeader(sim::Codec& c, RoceHeader& h) {
  c.vu64(h.seq);
  c.b(h.isNack);
  c.vu64(h.nackSeq);
  c.b(h.isAck);
  c.vu64(h.ackSeq);
}

/// Whole-packet codec: the variant body costs two bits of tag plus only
/// the fields of the alternative actually held.
inline void codecPacket(sim::Codec& c, Packet& p) {
  codecFlowKey(c, p.flow);
  std::uint8_t tag = static_cast<std::uint8_t>(p.body.index());
  if (c.writing()) {
    c.writer().writeBits(tag, 2);
  } else {
    tag = static_cast<std::uint8_t>(c.reader().readBits(2));
    switch (tag) {
      case 1: p.body = TcpHeader{}; break;
      case 2: p.body = ProbeHeader{}; break;
      case 3: p.body = RoceHeader{}; break;
      default: p.body = std::monostate{}; break;
    }
  }
  switch (tag) {
    case 1: codecTcpHeader(c, std::get<TcpHeader>(p.body)); break;
    case 2: codecProbeHeader(c, std::get<ProbeHeader>(p.body)); break;
    case 3: codecRoceHeader(c, std::get<RoceHeader>(p.body)); break;
    default: break;
  }
  sim::codecSize(c, p.payload);
  c.u8(p.ttl);
  c.vu64(p.id);
}

}  // namespace scidmz::net
