// Slab-allocated packet pool and the move-only handle that carries a packet
// through the data path.
//
// The simulated fabric used to pass `Packet` (a ~150-byte variant value) by
// value through every hop: into the egress queue, into the serialization
// completion event, into the propagation event, into the next device's
// receive — four-plus full copies per hop, millions of hops per scenario.
// The pool replaces all of that with one placement per packet lifetime: the
// originating host moves the packet into a pool slot once, and a 16-byte
// `PacketRef` handle moves (never copies) through `Interface::send`, the
// `DropTailQueue` ring, `Link` transmission, `Device::forward`, the firewall
// engines and the TCP/RoCE demux. When the last handle dies the slot returns
// to the freelist and is recycled — steady-state forwarding performs no
// allocation at all.
//
// Ownership rules (see DESIGN.md §6, "packet lifecycle"):
//  * exactly one live PacketRef owns a slot; moving the ref transfers
//    ownership, destroying it recycles the slot;
//  * borrowers (taps, ACLs, loss models, telemetry's FlightRecorder, the
//    PacketSink demux) receive `const Packet&` / `Packet&` and must not
//    retain the pointer past the call;
//  * a dropped packet is simply a ref that goes out of scope — drop paths
//    need no explicit free.
//
// The pool is per-`net::Context`, so parallel sweep cells never share slabs
// and recycling order is deterministic for a given scenario + seed.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace scidmz::net {

class PacketPool;

/// Move-only owning handle to a pool-resident packet. Empty handles are
/// valid (falsy) and are what `DropTailQueue::dequeue` returns when idle.
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(PacketRef&& other) noexcept : p_(other.p_), pool_(other.pool_) {
    other.p_ = nullptr;
    other.pool_ = nullptr;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    if (this != &other) {
      release();
      p_ = other.p_;
      pool_ = other.pool_;
      other.p_ = nullptr;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PacketRef(const PacketRef&) = delete;
  PacketRef& operator=(const PacketRef&) = delete;
  ~PacketRef() { release(); }

  [[nodiscard]] Packet& operator*() const { return *p_; }
  [[nodiscard]] Packet* operator->() const { return p_; }
  [[nodiscard]] Packet* get() const { return p_; }
  [[nodiscard]] explicit operator bool() const { return p_ != nullptr; }

  /// Return the slot to the pool now (drop paths usually just let the
  /// handle go out of scope instead).
  void reset() { release(); }

 private:
  friend class PacketPool;
  PacketRef(Packet* p, PacketPool* pool) : p_(p), pool_(pool) {}
  inline void release();

  Packet* p_ = nullptr;
  PacketPool* pool_ = nullptr;
};

/// Freelist-recycled slab allocator for packets. Slabs are never returned
/// to the OS during a scenario: the pool's high-water mark is the peak
/// number of in-flight packets, typically a few thousand slots.
class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Acquire a fresh (default-initialized) packet slot.
  [[nodiscard]] PacketRef acquire() {
    Packet* slot = takeSlot();
    *slot = Packet{};
    return PacketRef{slot, this};
  }

  /// Move an already-built packet value into a slot — the one copy a
  /// packet pays, at its origination point.
  [[nodiscard]] PacketRef acquire(Packet&& packet) {
    Packet* slot = takeSlot();
    *slot = std::move(packet);
    return PacketRef{slot, this};
  }

  /// Handles currently alive.
  [[nodiscard]] std::size_t liveCount() const { return live_; }
  /// Peak simultaneous live handles over the pool's lifetime.
  [[nodiscard]] std::size_t highWater() const { return high_water_; }
  /// Slots ever allocated (slabs * slab size).
  [[nodiscard]] std::size_t slotCount() const { return slabs_.size() * kSlabPackets; }

 private:
  friend class PacketRef;
  static constexpr std::size_t kSlabPackets = 256;

  Packet* takeSlot() {
    if (free_.empty()) addSlab();
    Packet* slot = free_.back();
    free_.pop_back();
    if (++live_ > high_water_) high_water_ = live_;
    return slot;
  }

  void releaseSlot(Packet* p) {
    free_.push_back(p);
    --live_;
  }

  void addSlab() {
    slabs_.push_back(std::make_unique<Packet[]>(kSlabPackets));
    Packet* slab = slabs_.back().get();
    free_.reserve(free_.size() + kSlabPackets);
    // LIFO freelist: push in reverse so the earliest slots recycle first —
    // recycling order is an implementation detail, but keeping it stable
    // keeps heap layouts (and so perf) reproducible run to run.
    for (std::size_t i = kSlabPackets; i > 0; --i) free_.push_back(slab + (i - 1));
  }

  std::vector<std::unique_ptr<Packet[]>> slabs_;
  std::vector<Packet*> free_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

inline void PacketRef::release() {
  if (p_ != nullptr) {
    pool_->releaseSlot(p_);
    p_ = nullptr;
    pool_ = nullptr;
  }
}

/// Pool-backed factory helpers mirroring the value-type helpers in
/// packet.hpp: build the packet directly in its slot, no intermediate value.
[[nodiscard]] inline PacketRef makeTcpPacket(PacketPool& pool, FlowKey flow,
                                             const TcpHeader& header, sim::DataSize payload) {
  PacketRef p = pool.acquire();
  p->flow = flow;
  p->body = header;
  p->payload = payload;
  return p;
}

[[nodiscard]] inline PacketRef makeProbePacket(PacketPool& pool, FlowKey flow,
                                               const ProbeHeader& header, sim::DataSize payload) {
  PacketRef p = pool.acquire();
  p->flow = flow;
  p->body = header;
  p->payload = payload;
  return p;
}

[[nodiscard]] inline PacketRef makeRocePacket(PacketPool& pool, FlowKey flow,
                                              const RoceHeader& header, sim::DataSize payload) {
  PacketRef p = pool.acquire();
  p->flow = flow;
  p->body = header;
  p->payload = payload;
  return p;
}

}  // namespace scidmz::net
