#include "net/address.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace scidmz::net {
namespace {

std::uint32_t parseOctet(std::string_view text, std::size_t& pos) {
  std::uint32_t value = 0;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) {
    throw std::invalid_argument("bad address octet in '" + std::string{text} + "'");
  }
  pos = static_cast<std::size_t>(ptr - text.data());
  return value;
}

}  // namespace

Address Address::parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value = (value << 8) | parseOctet(text, pos);
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("bad address '" + std::string{text} + "'");
      }
      ++pos;
    }
  }
  if (pos != text.size()) throw std::invalid_argument("trailing junk in '" + std::string{text} + "'");
  return Address{value};
}

std::string Address::toString() const {
  std::array<char, 20> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return std::string{buf.data()};
}

Prefix Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("prefix missing '/': '" + std::string{text} + "'");
  }
  const Address base = Address::parse(text.substr(0, slash));
  int length = 0;
  const auto lenText = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(lenText.data(), lenText.data() + lenText.size(), length);
  if (ec != std::errc{} || ptr != lenText.data() + lenText.size() || length < 0 || length > 32) {
    throw std::invalid_argument("bad prefix length in '" + std::string{text} + "'");
  }
  return Prefix{base, length};
}

std::string Prefix::toString() const {
  return base_.toString() + "/" + std::to_string(length_);
}

std::string FlowKey::toString() const {
  return std::string{net::toString(proto)} + " " + src.toString() + ":" +
         std::to_string(srcPort) + " -> " + dst.toString() + ":" + std::to_string(dstPort);
}

}  // namespace scidmz::net
