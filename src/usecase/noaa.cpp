#include "usecase/noaa.hpp"

#include <memory>
#include <string>

#include "apps/bulk_transfer.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_cluster.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace scidmz::usecase {

using namespace scidmz::sim::literals;

namespace {

/// Storage behind the NOAA DTN: sized like the modest RAID the team had —
/// this is what pins the "after" rate near the paper's ~395 MB/s.
dtn::StorageProfile noaaDtnStorage() {
  dtn::StorageProfile p;
  p.readRate = sim::DataRate::megabitsPerSecond(6400);   // 800 MB/s
  p.writeRate = sim::DataRate::megabitsPerSecond(3300);  // ~410 MB/s
  p.perStreamCap = p.readRate;
  return p;
}

double runLegacyPath(const NoaaConfig& config) {
  sim::Simulator simulator;
  sim::Rng rng{config.seed};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  core::SiteConfig site;
  site.wan.rate = config.wanRate;
  site.wan.delay = sim::Duration::nanoseconds(config.rtt.ns() / 2);
  site.wan.mtu = 1500_B;  // the legacy path never saw jumbo frames
  site.campusLinkRate = config.legacyAccessRate;
  site.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  site.remoteProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto campus = core::buildGeneralPurposeCampus(topo, site);

  // Single-stream FTP fetch into the firewalled server.
  apps::BulkTransfer transfer{campus->remoteDtn->host(), campus->primaryDtn()->host(), 21,
                              config.legacySampleBytes, campus->primaryDtn()->profile().tcp};
  transfer.start();
  simulator.runUntil(sim::SimTime::zero() + 3600_s);
  if (!transfer.result().completed) return 0.0;
  return transfer.result().goodput.toMBps();
}

}  // namespace

NoaaResult runNoaa(const NoaaConfig& config) {
  NoaaResult result;
  result.legacyMBps = runLegacyPath(config);

  // --- Science DMZ path: NERSC DTN -> NOAA DTN, Globus-style ------------
  sim::Simulator simulator;
  sim::Rng rng{config.seed + 1};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  core::SiteConfig site;
  site.wan.rate = config.wanRate;
  site.wan.delay = sim::Duration::nanoseconds(config.rtt.ns() / 2);
  site.wan.mtu = 9000_B;
  site.dtnStorage = noaaDtnStorage();
  auto dmz = core::buildSimpleScienceDmz(topo, site);

  // Representative sample of the 273-file batch (the rate converges within
  // a few files; the batch time is extrapolated from the measured rate).
  const std::size_t sampleFiles = 20;
  const auto fileSize =
      sim::DataSize::bytes(config.totalBytes.byteCount() / config.fileCount);

  dtn::DtnCluster src{"nersc"};
  dtn::DtnCluster dst{"noaa"};
  src.addNode(*dmz->remoteDtn);
  dst.addNode(*dmz->primaryDtn());
  dtn::TransferCampaign campaign{src, dst};
  for (std::size_t i = 0; i < sampleFiles; ++i) {
    campaign.enqueue({"gefs-" + std::to_string(i) + ".grb2", fileSize});
  }
  bool done = false;
  sim::Duration sampleElapsed = sim::Duration::zero();
  campaign.onComplete = [&](const dtn::TransferCampaign::Report& r) {
    done = true;
    sampleElapsed = r.elapsed;
  };
  campaign.start();
  simulator.runUntil(sim::SimTime::zero() + 3600_s);

  if (done && sampleElapsed > sim::Duration::zero()) {
    const auto sampleBytes = fileSize * sampleFiles;
    result.dmzMBps = static_cast<double>(sampleBytes.byteCount()) / 1e6 /
                     sampleElapsed.toSeconds();
    result.filesMoved = sampleFiles;
    result.dmzBatchTime = sim::Duration::fromSeconds(
        static_cast<double>(config.totalBytes.byteCount()) / 1e6 / result.dmzMBps);
  }
  return result;
}

}  // namespace scidmz::usecase
