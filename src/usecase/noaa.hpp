// Section 6.3 — NOAA reforecast data retrieval.
//
// The NOAA team needed ~170 TB of the 800 TB GEFS reforecast archive moved
// from NERSC to Boulder. Through the legacy firewalled FTP server, data
// trickled at 1-2 MB/s. A Science DMZ data path with a dedicated DTN and
// Globus-style transfers moved 273 files totalling 239.5 GB in just over
// ten minutes — about 395 MB/s, a ~200x improvement.
#pragma once

#include <cstddef>

#include "sim/units.hpp"

namespace scidmz::usecase {

struct NoaaConfig {
  /// NERSC <-> Boulder round trip.
  sim::Duration rtt = sim::Duration::milliseconds(50);
  sim::DataRate wanRate = sim::DataRate::gigabitsPerSecond(10);
  /// The legacy path's access link (firewalled FTP server).
  sim::DataRate legacyAccessRate = sim::DataRate::gigabitsPerSecond(1);
  /// The benchmark batch the paper quotes: 273 files, 239.5 GB.
  std::size_t fileCount = 273;
  sim::DataSize totalBytes = sim::DataSize::gigabytes(239) + sim::DataSize::megabytes(500);
  /// Sample size used to extrapolate the slow legacy path (simulating all
  /// 239.5 GB at ~1.5 MB/s would be pointless; rate converges quickly).
  sim::DataSize legacySampleBytes = sim::DataSize::megabytes(30);
  std::uint64_t seed = 11;
};

struct NoaaResult {
  double legacyMBps = 0.0;        ///< firewalled FTP path
  double dmzMBps = 0.0;           ///< Science DMZ DTN path
  sim::Duration dmzBatchTime;     ///< wall time for the 239.5 GB batch
  std::size_t filesMoved = 0;

  [[nodiscard]] double speedup() const {
    return legacyMBps > 0 ? dmzMBps / legacyMBps : 0.0;
  }
};

[[nodiscard]] NoaaResult runNoaa(const NoaaConfig& config = {});

}  // namespace scidmz::usecase
