#include "usecase/pennstate.hpp"

#include <algorithm>
#include <memory>

#include "apps/bulk_transfer.hpp"
#include "net/topology.hpp"
#include "scenario/callback_registry.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/mathis.hpp"

namespace scidmz::usecase {

using namespace scidmz::sim::literals;

sim::DataSize requiredWindow(const PennStateConfig& config) {
  return tcp::bandwidthDelayWindow(config.accessRate, config.rtt);
}

namespace {

PennStateDirection runDirection(const PennStateConfig& config, bool sequenceChecking,
                                bool inbound) {
  sim::Simulator simulator;
  sim::Rng rng{config.seed};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  // vtti --(campus access, RTT split)-- fw -- coe-switch -- coe-server
  auto& vtti = topo.addHost("vtti", net::Address(198, 82, 0, 1));
  auto profile = net::FirewallProfile::enterprise10G();
  profile.tcpSequenceChecking = sequenceChecking;
  auto& fw = topo.addFirewall("coe-fw", profile);
  auto& coeSwitch = topo.addSwitch("coe-switch");
  auto& server = topo.addHost("coe-server", net::Address(10, 30, 1, 1));

  net::LinkParams outside;
  outside.rate = config.accessRate;
  outside.delay = sim::Duration::nanoseconds(config.rtt.ns() / 2);
  outside.mtu = 1500_B;
  topo.connect(vtti, fw, outside);
  net::LinkParams inside;
  inside.rate = config.accessRate;
  inside.delay = 10_us;
  inside.mtu = 1500_B;
  topo.connect(fw, coeSwitch, inside);
  topo.connect(coeSwitch, server, inside);
  topo.computeRoutes();

  // Hosts are configured with auto-tuning: big buffers, scaling offered.
  tcp::TcpConfig tcpCfg;
  tcpCfg.algorithm = tcp::CcAlgorithm::kCubic;
  tcpCfg.sndBuf = 64_MB;
  tcpCfg.rcvBuf = 64_MB;

  net::Host& src = inbound ? vtti : server;
  net::Host& dst = inbound ? server : vtti;
  apps::BulkTransfer transfer{src, dst, 5001, config.transferSize, tcpCfg};
  transfer.start();

  // Sample the receiver's advertised window as seen by the sender. Named
  // registration (not a raw schedule) so a snapshot mid-run can claim and
  // re-arm the sampler.
  std::uint64_t peakWindow = 0;
  auto& callbacks = ctx.extension<scenario::CallbackRegistry>();
  callbacks.registerNamed("pennstate/window_sampler", [&] {
    if (auto* conn = transfer.clientConnection()) {
      peakWindow = std::max(peakWindow, conn->peerWindowBytes());
    }
    if (!transfer.finished()) {
      callbacks.scheduleNamed(simulator, "pennstate/window_sampler", 50_ms);
    }
  });
  callbacks.scheduleNamed(simulator, "pennstate/window_sampler", 50_ms);
  simulator.runUntil(sim::SimTime::zero() + 600_s);

  PennStateDirection out;
  out.mbps = transfer.result().completed ? transfer.result().goodput.toMbps() : 0.0;
  out.windowScalingActive =
      transfer.clientConnection() != nullptr && transfer.clientConnection()->windowScalingActive();
  out.peakWindowBytes = peakWindow;
  return out;
}

}  // namespace

PennStateResult runPennState(const PennStateConfig& config) {
  PennStateResult result;
  result.inboundBefore = runDirection(config, /*sequenceChecking=*/true, /*inbound=*/true);
  result.outboundBefore = runDirection(config, true, false);
  result.inboundAfter = runDirection(config, false, true);
  result.outboundAfter = runDirection(config, false, false);
  return result;
}

}  // namespace scidmz::usecase
