#include "usecase/nersc_olcf.hpp"

#include "apps/bulk_transfer.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_node.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace scidmz::usecase {

using namespace scidmz::sim::literals;

namespace {

/// HPSS-archive-backed DTN storage of the era: ~200 MB/s per mover. The
/// sending side's read rate is what pins the end-to-end result.
dtn::StorageProfile hpssMoverStorage() {
  dtn::StorageProfile p;
  p.readRate = sim::DataRate::megabitsPerSecond(1700);   // ~212 MB/s
  p.writeRate = sim::DataRate::megabitsPerSecond(1700);
  p.perStreamCap = sim::DataRate::megabitsPerSecond(1700);
  return p;
}

double measureMBps(double sampleMB, sim::Duration elapsed) {
  return elapsed > sim::Duration::zero() ? sampleMB / elapsed.toSeconds() : 0.0;
}

}  // namespace

NerscOlcfResult runNerscOlcf(const NerscOlcfConfig& config) {
  NerscOlcfResult result;

  // --- before: untuned login-node-style path through the border firewall --
  {
    sim::Simulator simulator;
    sim::Rng rng{config.seed};
    sim::Logger logger;
    net::Context ctx{simulator, rng, logger};
    net::Topology topo{ctx};

    core::SiteConfig site;
    site.wan.rate = config.wanRate;
    site.wan.delay = sim::Duration::nanoseconds(config.rtt.ns() / 2);
    site.wan.mtu = 1500_B;
    site.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
    site.remoteProfile = dtn::DtnProfile::untunedGeneralPurpose();
    auto campus = core::buildGeneralPurposeCampus(topo, site);

    const auto sample = 30_MB;
    apps::BulkTransfer transfer{campus->remoteDtn->host(), campus->primaryDtn()->host(), 2811,
                                sample, campus->primaryDtn()->profile().tcp};
    transfer.start();
    simulator.runUntil(sim::SimTime::zero() + 3600_s);
    if (transfer.result().completed) {
      result.beforeMBps = measureMBps(sample.toMB(), transfer.result().elapsed);
    }
  }

  // --- after: DTN to DTN between the two centers --------------------------
  {
    sim::Simulator simulator;
    sim::Rng rng{config.seed + 1};
    sim::Logger logger;
    net::Context ctx{simulator, rng, logger};
    net::Topology topo{ctx};

    core::SiteConfig site;
    site.wan.rate = config.wanRate;
    site.wan.delay = sim::Duration::nanoseconds(config.rtt.ns() / 2);
    site.wan.mtu = 9000_B;
    site.dtnStorage = hpssMoverStorage();
    site.remoteStorage = hpssMoverStorage();
    auto center = core::buildSupercomputerCenter(topo, site);

    dtn::DtnTransfer transfer{*center->remoteDtn, *center->primaryDtn(), "c14-input.h5",
                              config.sampleBytes, 50000};
    transfer.start();
    simulator.runUntil(sim::SimTime::zero() + 3600_s);
    if (transfer.finished() && transfer.result().completed) {
      result.afterMBps = measureMBps(config.sampleBytes.toMB(), transfer.result().elapsed);
    }
  }

  if (result.beforeMBps > 0) {
    result.fileTimeBefore = sim::Duration::fromSeconds(
        config.fileSize.toMB() / result.beforeMBps);
  }
  if (result.afterMBps > 0) {
    result.fileTimeAfter = sim::Duration::fromSeconds(config.fileSize.toMB() / result.afterMBps);
    result.campaignTimeAfter = sim::Duration::fromSeconds(
        static_cast<double>(config.campaignSize.byteCount()) / 1e6 / result.afterMBps);
  }
  return result;
}

}  // namespace scidmz::usecase
