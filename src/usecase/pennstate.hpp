// Section 6.2 — Penn State College of Engineering & VTTI (Figure 8).
//
// Collocated VTTI equipment behind the CoE firewall saw ~50 Mbps on 1G
// connections despite auto-tuning, in both directions. perfSONAR testing
// showed the TCP window stuck at 64 KB: the firewall's "TCP flow sequence
// checking" was rewriting SYN options and stripping RFC 1323 window
// scaling. Disabling the feature multiplied inbound throughput ~5x and
// outbound ~12x.
#pragma once

#include "sim/units.hpp"

namespace scidmz::usecase {

struct PennStateConfig {
  sim::DataRate accessRate = sim::DataRate::gigabitsPerSecond(1);
  /// Paper: "the sites were measured at 10 ms away" round trip.
  sim::Duration rtt = sim::Duration::milliseconds(10);
  sim::DataSize transferSize = sim::DataSize::megabytes(200);
  std::uint64_t seed = 7;
};

struct PennStateDirection {
  double mbps = 0.0;
  bool windowScalingActive = false;
  std::uint64_t peakWindowBytes = 0;
};

struct PennStateResult {
  PennStateDirection inboundBefore;   ///< VTTI -> CoE, sequence checking on
  PennStateDirection outboundBefore;  ///< CoE -> VTTI, sequence checking on
  PennStateDirection inboundAfter;    ///< ... after disabling the feature
  PennStateDirection outboundAfter;

  [[nodiscard]] double inboundSpeedup() const {
    return inboundBefore.mbps > 0 ? inboundAfter.mbps / inboundBefore.mbps : 0.0;
  }
  [[nodiscard]] double outboundSpeedup() const {
    return outboundBefore.mbps > 0 ? outboundAfter.mbps / outboundBefore.mbps : 0.0;
  }
};

/// The Equation 2 window the paper computes: BDP of the access path.
[[nodiscard]] sim::DataSize requiredWindow(const PennStateConfig& config);

[[nodiscard]] PennStateResult runPennState(const PennStateConfig& config = {});

}  // namespace scidmz::usecase
