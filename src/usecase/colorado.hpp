// Section 6.1 — University of Colorado, Boulder (Figures 6-7).
//
// The CMS physics group's hosts sit on 1G ports of an RCNet aggregation
// switch with a 10G uplink. Under heavy load the switch fell back from
// cut-through to store-and-forward and, due to a vendor defect, could no
// longer provide loss-free service; downloads from the LHC tiers
// collapsed. After the vendor fix (plus architecture changes) performance
// returned to near line rate per host.
#pragma once

#include <vector>

#include "sim/units.hpp"

namespace scidmz::usecase {

struct ColoradoConfig {
  int physicsHosts = 5;
  sim::DataRate hostLink = sim::DataRate::gigabitsPerSecond(1);
  sim::DataRate uplink = sim::DataRate::gigabitsPerSecond(10);
  /// WAN RTT to the LHC tier serving the data.
  sim::Duration wanRtt = sim::Duration::milliseconds(40);
  /// Aggregate ingress load that trips the cut-through fallback.
  sim::DataRate defectThreshold = sim::DataRate::gigabitsPerSecond(2);
  bool vendorFixApplied = false;
  sim::Duration measureWindow = sim::Duration::seconds(5);
  std::uint64_t seed = 42;
};

struct ColoradoResult {
  std::vector<double> perHostMbps;
  double aggregateMbps = 0.0;
  bool storeForwardLatched = false;
  std::uint64_t switchDrops = 0;

  [[nodiscard]] double worstHostMbps() const;
  [[nodiscard]] double bestHostMbps() const;
};

/// Run the scenario: simultaneous bulk downloads from the tier site to
/// every physics host, measured over `measureWindow` after ramp-up.
[[nodiscard]] ColoradoResult runColorado(const ColoradoConfig& config);

}  // namespace scidmz::usecase
