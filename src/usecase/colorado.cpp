#include "usecase/colorado.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"

namespace scidmz::usecase {

using namespace scidmz::sim::literals;

double ColoradoResult::worstHostMbps() const {
  return perHostMbps.empty() ? 0.0 : *std::min_element(perHostMbps.begin(), perHostMbps.end());
}

double ColoradoResult::bestHostMbps() const {
  return perHostMbps.empty() ? 0.0 : *std::max_element(perHostMbps.begin(), perHostMbps.end());
}

ColoradoResult runColorado(const ColoradoConfig& config) {
  sim::Simulator simulator;
  sim::Rng rng{config.seed};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  // Tier site --10G WAN-- border --10G-- RCNet aggregation switch --1G-- hosts.
  auto& tier = topo.addHost("cms-tier", net::Address(192, 12, 15, 1));
  auto& border = topo.addRouter("campus-border");
  auto& rcnet = topo.addSwitch("rcnet-agg", net::SwitchProfile::scienceDmz());

  net::FanInDefect defect;
  defect.enabled = true;
  defect.loadThreshold = config.defectThreshold;
  defect.defectiveBuffer = 64_KiB;
  // Average over a window long enough that the trigger reflects sustained
  // demand, not the line-rate micro-bursts every TCP flow emits.
  defect.loadWindow = 100_ms;
  rcnet.setFanInDefect(defect);
  if (config.vendorFixApplied) rcnet.applyVendorFix();

  net::LinkParams wan;
  wan.rate = config.uplink;
  wan.delay = sim::Duration::nanoseconds(config.wanRtt.ns() / 2);
  wan.mtu = 1500_B;
  topo.connect(tier, border, wan);

  net::LinkParams uplink;
  uplink.rate = config.uplink;
  uplink.delay = 50_us;
  uplink.mtu = 1500_B;
  topo.connect(border, rcnet, uplink);

  std::vector<net::Host*> hosts;
  net::LinkParams edge;
  edge.rate = config.hostLink;
  edge.delay = 20_us;
  edge.mtu = 1500_B;
  for (int i = 0; i < config.physicsHosts; ++i) {
    auto& host = topo.addHost("physics-" + std::to_string(i),
                              net::Address(10, 40, 1, static_cast<std::uint8_t>(i + 1)));
    topo.connect(host, rcnet, edge);
    hosts.push_back(&host);
  }
  topo.computeRoutes();

  // One tuned bulk download per host (CMS data pulls). Sender is the tier.
  // Buffers sized ~1.5x the path BDP: enough to fill the 1G edge, small
  // enough that the healthy switch's buffers absorb the standing queue.
  tcp::TcpConfig tcpCfg;
  tcpCfg.algorithm = tcp::CcAlgorithm::kCubic;
  tcpCfg.sndBuf = 8_MB;
  tcpCfg.rcvBuf = 8_MB;

  std::vector<net::FlowPtr> flows;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    // The host "requests" data: it is the TCP client; the tier listens and
    // pushes. Flow direction: tier -> host. Server push drives per-packet
    // TCP state directly, so the fidelity is pinned at packet — the global
    // --fidelity override does not apply.
    net::FlowFactory::Options options;
    options.port = static_cast<std::uint16_t>(7000 + i);
    options.pinned = true;
    auto flow = net::flowFactory(ctx).create(*hosts[i], tier, tcpCfg, options);
    auto* raw = flow.get();
    flow->onAccepted = [raw](int stream) {
      raw->serverConnection(stream)->sendData(sim::DataSize::terabytes(1));
    };
    flow->start();
    flows.push_back(std::move(flow));
  }

  // Ramp-up, then measure deltas over the window. The data direction is
  // tier -> host, so delivery is read on the *client* connection.
  simulator.runFor(3_s);
  std::vector<sim::DataSize> base(hosts.size(), sim::DataSize::zero());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    base[i] = flows[i]->clientConnection(0)->deliveredBytes();
  }
  simulator.runFor(config.measureWindow);

  ColoradoResult result;
  const double windowSecs = config.measureWindow.toSeconds();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const auto delta = flows[i]->clientConnection(0)->deliveredBytes() - base[i];
    const double mbps = static_cast<double>(delta.bitCount()) / windowSecs / 1e6;
    result.perHostMbps.push_back(mbps);
    result.aggregateMbps += mbps;
  }
  result.storeForwardLatched = rcnet.fallbackLatched();
  for (std::size_t i = 0; i < rcnet.interfaceCount(); ++i) {
    result.switchDrops += rcnet.interface(i).queue().stats().dropped;
  }
  return result;
}

}  // namespace scidmz::usecase
