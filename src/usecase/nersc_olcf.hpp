// Section 6.4 — NERSC <-> OLCF DTN deployment.
//
// Before the 2009 DTN rollout, a computational scientist waited more than
// a workday for a single 33 GB input file between the centers' mass
// storage systems. With dedicated DTNs the rate reached ~200 MB/s, moving
// the full 40 TB campaign (20 such files plus the rest) in under three
// days — at least a 20x improvement for many collaborations.
#pragma once

#include "sim/units.hpp"

namespace scidmz::usecase {

struct NerscOlcfConfig {
  /// Berkeley <-> Oak Ridge round trip.
  sim::Duration rtt = sim::Duration::milliseconds(60);
  sim::DataRate wanRate = sim::DataRate::gigabitsPerSecond(10);
  sim::DataSize fileSize = sim::DataSize::gigabytes(33);
  sim::DataSize campaignSize = sim::DataSize::terabytes(40);
  /// Sample transferred when measuring each path (rates converge quickly;
  /// whole-campaign times are extrapolated from the measured rate).
  sim::DataSize sampleBytes = sim::DataSize::gigabytes(4);
  std::uint64_t seed = 13;
};

struct NerscOlcfResult {
  double beforeMBps = 0.0;  ///< login-node path, untuned, firewalled
  double afterMBps = 0.0;   ///< DTN-to-DTN path
  sim::Duration fileTimeBefore;      ///< one 33 GB file, before
  sim::Duration fileTimeAfter;       ///< one 33 GB file, after
  sim::Duration campaignTimeAfter;   ///< the 40 TB campaign, after

  [[nodiscard]] double speedup() const {
    return beforeMBps > 0 ? afterMBps / beforeMBps : 0.0;
  }
};

[[nodiscard]] NerscOlcfResult runNerscOlcf(const NerscOlcfConfig& config = {});

}  // namespace scidmz::usecase
