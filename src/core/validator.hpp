// Design-rule validator: mechanically checks a Site against the four
// Science DMZ sub-patterns and reports violations. This is the paper's
// "design pattern" made executable — each rule encodes one sentence of
// Section 3 or 5.
#pragma once

#include <string>
#include <vector>

#include "core/patterns.hpp"
#include "core/site.hpp"

namespace scidmz::core {

enum class RuleId {
  // Location pattern (§3.1)
  kSciencePathAvoidsFirewall,   ///< science flows must not cross a firewall
  kDmzNearPerimeter,            ///< few devices between border and DTN
  kScienceTrafficSeparated,     ///< DTN not on the general-purpose LAN

  // Dedicated systems pattern (§3.2)
  kDtnIsDedicated,              ///< only transfer applications on the DTN
  kDtnTuned,                    ///< socket buffers sized for the path BDP
  kDtnMatchedToWan,             ///< DTN NIC must not overwhelm the WAN
  kJumboFramesOnPath,           ///< 9000-byte MTU end to end on science path

  // Monitoring pattern (§3.3)
  kMeasurementHostPresent,      ///< perfSONAR host deployed
  kMeasurementHostOnDmz,        ///< ...and on the science path's segment

  // Appropriate security pattern (§3.4 / §5)
  kDmzAclPolicyPresent,         ///< ACLs on the DMZ switch, default deny
  kAdequatePathBuffers,         ///< switch buffers absorb fan-in bursts
  kNoSequenceCheckingFirewall,  ///< no RFC1323-violating middlebox features
};

[[nodiscard]] std::string_view toString(RuleId id);
[[nodiscard]] Pattern patternOf(RuleId id);

enum class Severity { kCritical, kWarning };

struct Violation {
  RuleId rule;
  Severity severity = Severity::kCritical;
  std::string subject;  ///< device/host the finding is about
  std::string detail;
};

struct ValidationResult {
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] bool hasViolation(RuleId id) const {
    for (const auto& v : violations) {
      if (v.rule == id) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t criticalCount() const {
    std::size_t n = 0;
    for (const auto& v : violations) {
      if (v.severity == Severity::kCritical) ++n;
    }
    return n;
  }
};

struct ValidatorOptions {
  /// Minimum per-port egress buffer on science-path switches, as a
  /// fraction of the WAN bandwidth-delay product.
  double bufferBdpFraction = 0.25;
  /// Floor for the buffer requirement regardless of BDP.
  sim::DataSize bufferFloor = sim::DataSize::mebibytes(1);
};

/// Validate the site's science path (remote DTN -> primary local DTN) and
/// role configuration against all rules.
[[nodiscard]] ValidationResult validate(const Site& site, ValidatorOptions options = {});

}  // namespace scidmz::core
