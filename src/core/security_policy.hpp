// The appropriate-security pattern, compiled: a per-service policy for the
// Science DMZ expressed as data, turned into a default-deny ACL applied in
// the DMZ switch's forwarding plane (no firewall in the science path).
#pragma once

#include <vector>

#include "net/acl.hpp"

namespace scidmz::core {

/// Well-known science service ports used across this library.
inline constexpr std::uint16_t kGridFtpControlPort = 2811;
inline constexpr net::PortRange kGridFtpDataPorts{50000, 51000};
inline constexpr std::uint16_t kOwampPortBase = 861;
inline constexpr net::PortRange kOwampPorts{861, 880};
inline constexpr std::uint16_t kBwctlPort = 4823;
inline constexpr std::uint16_t kRocePort = 4791;

struct DmzServicePolicy {
  /// Who is allowed to talk to the DMZ at all.
  net::Prefix collaborators{net::Address(198, 128, 0, 0), 16};
  /// The local institution's own address space (always allowed outbound).
  net::Prefix localNetworks{net::Address(10, 0, 0, 0), 8};
  /// Enterprise space reachable through the DMZ fabric on designs where
  /// the business network rides the same front-end (Figure 5): traffic to
  /// it is passed along — the enterprise firewall applies policy there.
  net::Prefix enterpriseNetworks{net::Address(10, 20, 0, 0), 16};
  /// The DTNs this policy protects.
  std::vector<net::Address> dtnAddresses;
  /// The measurement host (OWAMP/BWCTL targets).
  std::vector<net::Address> measurementHosts;
};

/// Compile the policy to a first-match, default-deny ACL. For every
/// protected host and service, both connection orientations are permitted:
/// collaborator traffic *to* the service port, and collaborator traffic
/// *from* the service port (the return half of locally-initiated
/// transfers) — the standard stateless-ACL idiom for science DMZs.
[[nodiscard]] net::AclTable compileDmzAcl(const DmzServicePolicy& policy);

}  // namespace scidmz::core
