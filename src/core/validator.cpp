#include "core/validator.hpp"

#include <algorithm>

#include "tcp/mathis.hpp"

namespace scidmz::core {

std::string_view toString(RuleId id) {
  switch (id) {
    case RuleId::kSciencePathAvoidsFirewall: return "science-path-avoids-firewall";
    case RuleId::kDmzNearPerimeter: return "dmz-near-perimeter";
    case RuleId::kScienceTrafficSeparated: return "science-traffic-separated";
    case RuleId::kDtnIsDedicated: return "dtn-is-dedicated";
    case RuleId::kDtnTuned: return "dtn-tuned";
    case RuleId::kDtnMatchedToWan: return "dtn-matched-to-wan";
    case RuleId::kJumboFramesOnPath: return "jumbo-frames-on-path";
    case RuleId::kMeasurementHostPresent: return "measurement-host-present";
    case RuleId::kMeasurementHostOnDmz: return "measurement-host-on-dmz";
    case RuleId::kDmzAclPolicyPresent: return "dmz-acl-policy-present";
    case RuleId::kAdequatePathBuffers: return "adequate-path-buffers";
    case RuleId::kNoSequenceCheckingFirewall: return "no-sequence-checking-firewall";
  }
  return "?";
}

Pattern patternOf(RuleId id) {
  switch (id) {
    case RuleId::kSciencePathAvoidsFirewall:
    case RuleId::kDmzNearPerimeter:
    case RuleId::kScienceTrafficSeparated:
      return Pattern::kLocation;
    case RuleId::kDtnIsDedicated:
    case RuleId::kDtnTuned:
    case RuleId::kDtnMatchedToWan:
    case RuleId::kJumboFramesOnPath:
      return Pattern::kDedicatedSystems;
    case RuleId::kMeasurementHostPresent:
    case RuleId::kMeasurementHostOnDmz:
      return Pattern::kMonitoring;
    case RuleId::kDmzAclPolicyPresent:
    case RuleId::kAdequatePathBuffers:
    case RuleId::kNoSequenceCheckingFirewall:
      return Pattern::kAppropriateSecurity;
  }
  return Pattern::kLocation;
}

namespace {

void add(ValidationResult& result, RuleId rule, Severity severity, std::string subject,
         std::string detail) {
  result.violations.push_back(Violation{rule, severity, std::move(subject), std::move(detail)});
}

/// First-hop device a host attaches to (its access switch), or nullptr.
net::Device* attachmentOf(const net::Host& host) {
  if (host.interfaceCount() == 0 || !host.interface(0).attached()) return nullptr;
  const auto& nic = host.interface(0);
  return &nic.link()->peer(nic.linkEnd()).owner();
}

}  // namespace

ValidationResult validate(const Site& site, ValidatorOptions options) {
  ValidationResult result;
  const auto& topo = site.topology();

  dtn::DataTransferNode* local = site.primaryDtn();
  if (local == nullptr || site.remoteDtn == nullptr) {
    add(result, RuleId::kDtnIsDedicated, Severity::kCritical, "site",
        "no data transfer node present");
    return result;
  }

  const auto path = topo.trace(site.remoteDtn->host().address(), local->host().address());
  if (!path || !path->complete()) {
    add(result, RuleId::kSciencePathAvoidsFirewall, Severity::kCritical, "site",
        "no routed path from the collaborator to the DTN");
    return result;
  }

  const auto pathDevices = path->devices();
  const auto rtt = path->propagationDelay() * 2;
  const auto bottleneck = path->bottleneckRate();
  const auto bdp = tcp::bandwidthDelayWindow(bottleneck, rtt);

  // --- Location pattern ---------------------------------------------------
  for (auto* device : pathDevices) {
    if (auto* fw = dynamic_cast<net::FirewallDevice*>(device)) {
      add(result, RuleId::kSciencePathAvoidsFirewall, Severity::kCritical, fw->name(),
          "science data path traverses a stateful firewall; its per-engine "
          "buffering will drop line-rate TCP bursts");
    }
  }

  if (site.borderRouter != nullptr) {
    const auto it = std::find(pathDevices.begin(), pathDevices.end(),
                              static_cast<net::Device*>(site.borderRouter));
    if (it == pathDevices.end()) {
      add(result, RuleId::kDmzNearPerimeter, Severity::kWarning, site.borderRouter->name(),
          "science path does not cross the border router");
    } else {
      // Devices strictly between the border router and the DTN host.
      const auto between = std::distance(it, pathDevices.end()) - 2;
      if (between > 2) {
        add(result, RuleId::kDmzNearPerimeter, Severity::kWarning, local->host().name(),
            std::to_string(between) + " devices between border and DTN; the DMZ "
            "belongs at or near the perimeter");
      }
    }
  }

  if (net::Device* access = attachmentOf(local->host())) {
    for (const auto* office : site.enterpriseHosts) {
      if (attachmentOf(*office) == access) {
        add(result, RuleId::kScienceTrafficSeparated, Severity::kCritical, access->name(),
            "DTN shares its access switch with general-purpose hosts (" + office->name() + ")");
        break;
      }
    }
  }

  // --- Dedicated systems pattern -------------------------------------------
  if (!local->profile().dedicatedApplicationSet) {
    add(result, RuleId::kDtnIsDedicated, Severity::kCritical, local->host().name(),
        "transfer host runs a general-purpose application set");
  }

  const auto& tcpCfg = local->profile().tcp;
  if (tcpCfg.rcvBuf < bdp || tcpCfg.sndBuf < bdp) {
    add(result, RuleId::kDtnTuned, Severity::kCritical, local->host().name(),
        "socket buffers (" + sim::toString(tcpCfg.rcvBuf) + ") below the path BDP (" +
            sim::toString(bdp) + "); throughput will be window-limited");
  }

  if (local->host().nicRate() > bottleneck) {
    add(result, RuleId::kDtnMatchedToWan, Severity::kWarning, local->host().name(),
        "DTN NIC (" + sim::toString(local->host().nicRate()) + ") exceeds the WAN bottleneck (" +
            sim::toString(bottleneck) + "); line-rate bursts can overwhelm the slower span");
  }

  for (const auto& hop : path->hops) {
    if (hop.link->mtu() < sim::DataSize::bytes(9000)) {
      add(result, RuleId::kJumboFramesOnPath, Severity::kWarning, hop.device->name(),
          "link MTU " + sim::toString(hop.link->mtu()) + " on the science path; jumbo "
          "frames multiply loss-limited throughput six-fold");
      break;
    }
  }

  // --- Monitoring pattern ---------------------------------------------------
  if (site.perfsonarHost == nullptr) {
    add(result, RuleId::kMeasurementHostPresent, Severity::kCritical, "site",
        "no perfSONAR measurement host: soft failures will go unnoticed "
        "until scientists complain");
  } else if (net::Device* psAccess = attachmentOf(*site.perfsonarHost)) {
    if (std::find(pathDevices.begin(), pathDevices.end(), psAccess) == pathDevices.end()) {
      add(result, RuleId::kMeasurementHostOnDmz, Severity::kWarning,
          site.perfsonarHost->name(),
          "measurement host is not attached to the science path; its tests "
          "will not exercise the segments that matter");
    }
  }

  // --- Appropriate security pattern -----------------------------------------
  if (site.dmzSwitch != nullptr) {
    const auto& acl = site.dmzSwitch->acl();
    if (!acl.has_value()) {
      add(result, RuleId::kDmzAclPolicyPresent, Severity::kCritical, site.dmzSwitch->name(),
          "no ACL policy on the DMZ switch; apply per-service permits with "
          "default deny");
    } else if (acl->defaultAction() != net::AclAction::kDeny) {
      add(result, RuleId::kDmzAclPolicyPresent, Severity::kWarning, site.dmzSwitch->name(),
          "DMZ ACL present but default action is permit");
    }
  }

  {
    const auto required = std::max(
        options.bufferFloor,
        sim::DataSize::bytes(static_cast<std::uint64_t>(
            static_cast<double>(bdp.byteCount()) * options.bufferBdpFraction)));
    // The transmitting interface of each hop belongs to the previous device
    // on the path; start from the remote host and ignore host NICs.
    const net::Device* prev = path->src;
    for (const auto& hop : path->hops) {
      const bool prevIsSwitch = dynamic_cast<const net::SwitchDevice*>(prev) != nullptr;
      if (prevIsSwitch) {
        const auto& txIf =
            &hop.link->end(0).owner() == prev ? hop.link->end(0) : hop.link->end(1);
        if (txIf.queue().capacity() < required) {
          add(result, RuleId::kAdequatePathBuffers, Severity::kCritical, prev->name(),
              "egress buffer " + sim::toString(txIf.queue().capacity()) + " below " +
                  sim::toString(required) + " needed for fan-in bursts at this BDP");
        }
      }
      prev = hop.device;
    }
  }

  for (const auto& devicePtr : topo.devices()) {
    if (auto* fw = dynamic_cast<net::FirewallDevice*>(devicePtr.get())) {
      if (fw->profile().tcpSequenceChecking) {
        const bool onPath =
            std::find(pathDevices.begin(), pathDevices.end(), devicePtr.get()) !=
            pathDevices.end();
        add(result, RuleId::kNoSequenceCheckingFirewall,
            onPath ? Severity::kCritical : Severity::kWarning, fw->name(),
            "TCP flow sequence checking rewrites SYN options (strips RFC 1323 "
            "window scaling), capping any flow it touches at 64 KiB windows");
      }
    }
  }

  return result;
}

}  // namespace scidmz::core
