#include "core/site_builder.hpp"

#include <stdexcept>
#include <string>

#include "core/security_policy.hpp"

namespace scidmz::core {
namespace {

using sim::DataRate;
using sim::DataSize;
using sim::Duration;

net::LinkParams lanLink(DataRate rate, DataSize mtu) {
  net::LinkParams lp;
  lp.rate = rate;
  lp.delay = Duration::microseconds(5);
  lp.mtu = mtu;
  return lp;
}

/// Remote collaborator side: a DTN and a perfSONAR host hung off a WAN core
/// router, plus the long-haul span toward the site border. Returns the WAN
/// core router; `site->wanLink` is the long-haul link.
net::RouterDevice& buildRemoteAndWan(net::Topology& topology, Site& site,
                                     const SiteConfig& config, net::Device& siteEdge) {
  auto& ctx = topology.ctx();
  auto& wanCore = topology.addRouter("wan-core", net::SwitchProfile::scienceDmz());

  auto& remoteHost = topology.addHost("remote-dtn", net::Address(198, 128, 1, 1));
  topology.connect(remoteHost, wanCore, lanLink(config.wan.rate, config.wan.mtu));
  auto& remoteStorage = site.addStorage(ctx, config.remoteStorage);
  site.remoteDtn = &site.addDtnNode(remoteHost, remoteStorage, config.remoteProfile);

  site.remotePerfsonarHost = &topology.addHost("remote-ps", net::Address(198, 128, 1, 2));
  topology.connect(*site.remotePerfsonarHost, wanCore, lanLink(config.wan.rate, config.wan.mtu));

  net::LinkParams span;
  span.rate = config.wan.rate;
  span.delay = config.wan.delay;
  span.mtu = config.wan.mtu;
  site.wanLink = &topology.connect(wanCore, siteEdge, span);
  return wanCore;
}

/// Enterprise section: firewall -> campus switch -> N business hosts.
net::SwitchDevice& buildEnterprise(net::Topology& topology, Site& site,
                                   const SiteConfig& config, net::Device& attachTo) {
  site.enterpriseFirewall = &topology.addFirewall("enterprise-fw", config.firewall);
  topology.connect(attachTo, *site.enterpriseFirewall,
                   lanLink(config.wan.rate, DataSize::bytes(1500)));
  auto& campusSwitch = topology.addSwitch("campus-switch", net::SwitchProfile::cheapLan());
  topology.connect(*site.enterpriseFirewall, campusSwitch,
                   lanLink(DataRate::gigabitsPerSecond(10), DataSize::bytes(1500)));
  for (int i = 0; i < config.enterpriseHostCount; ++i) {
    auto& host = topology.addHost("office-" + std::to_string(i),
                                  net::Address(10, 20, 1, static_cast<std::uint8_t>(i + 1)));
    topology.connect(host, campusSwitch, lanLink(config.campusLinkRate, DataSize::bytes(1500)));
    site.enterpriseHosts.push_back(&host);
  }
  return campusSwitch;
}

/// Every builder validates its config up front: a zero-rate WAN or an empty
/// DTN pool builds a topology that deadlocks or divides by zero deep inside
/// the simulation, far from the mistake.
void validateSiteConfig(const SiteConfig& config, const char* builder) {
  const std::string where = std::string(builder) + ": SiteConfig.";
  if (config.wan.rate.bps() == 0) {
    throw std::invalid_argument(where +
                                "wan.rate is zero; set a positive WAN rate "
                                "(e.g. sim::DataRate::gigabitsPerSecond(10))");
  }
  if (config.dtnCount <= 0) {
    throw std::invalid_argument(where + "dtnCount is " + std::to_string(config.dtnCount) +
                                "; at least one DTN is required");
  }
  if (config.computeNodeCount < 0) {
    throw std::invalid_argument(where + "computeNodeCount is " +
                                std::to_string(config.computeNodeCount) +
                                "; use 0 for no compute nodes");
  }
}

void applyDmzPolicy(Site& site) {
  if (site.dmzSwitch == nullptr) return;
  DmzServicePolicy policy;
  for (const auto* node : site.dtns) policy.dtnAddresses.push_back(node->host().address());
  if (site.perfsonarHost != nullptr) {
    policy.measurementHosts.push_back(site.perfsonarHost->address());
  }
  site.dmzSwitch->setAcl(compileDmzAcl(policy));
}

}  // namespace

std::unique_ptr<Site> buildGeneralPurposeCampus(net::Topology& topology,
                                                const SiteConfig& config) {
  validateSiteConfig(config, "buildGeneralPurposeCampus");
  auto site = std::make_unique<Site>(topology, SiteKind::kGeneralPurposeCampus);
  auto& ctx = topology.ctx();

  site->borderRouter = &topology.addRouter("border", net::SwitchProfile::scienceDmz());
  buildRemoteAndWan(topology, *site, config, *site->borderRouter);
  auto& campusSwitch = buildEnterprise(topology, *site, config, *site->borderRouter);

  // The transfer server lives on the campus LAN, behind the firewall, on a
  // campus-speed port — the baseline every use case starts from.
  auto& serverHost = topology.addHost("campus-xfer", net::Address(10, 20, 1, 100));
  topology.connect(serverHost, campusSwitch,
                   lanLink(config.campusLinkRate, DataSize::bytes(1500)));
  auto& storage = site->addStorage(ctx, config.dtnStorage);
  site->dtns.push_back(&site->addDtnNode(serverHost, storage, config.dtnProfile));

  topology.computeRoutes();
  return site;
}

std::unique_ptr<Site> buildSimpleScienceDmz(net::Topology& topology, const SiteConfig& config) {
  validateSiteConfig(config, "buildSimpleScienceDmz");
  auto site = std::make_unique<Site>(topology, SiteKind::kSimpleScienceDmz);
  auto& ctx = topology.ctx();

  site->borderRouter = &topology.addRouter("border", net::SwitchProfile::scienceDmz());
  buildRemoteAndWan(topology, *site, config, *site->borderRouter);

  site->dmzSwitch = &topology.addSwitch("dmz-switch", net::SwitchProfile::scienceDmz());
  topology.connect(*site->borderRouter, *site->dmzSwitch,
                   lanLink(config.wan.rate, config.wan.mtu));

  auto& dtnHost = topology.addHost("dtn", net::Address(10, 10, 1, 10));
  topology.connect(dtnHost, *site->dmzSwitch, lanLink(config.wan.rate, config.wan.mtu));
  auto& storage = site->addStorage(ctx, config.dtnStorage);
  site->dtns.push_back(&site->addDtnNode(dtnHost, storage, config.dtnProfile));

  site->perfsonarHost = &topology.addHost("ps", net::Address(10, 10, 1, 250));
  topology.connect(*site->perfsonarHost, *site->dmzSwitch,
                   lanLink(config.wan.rate, config.wan.mtu));

  buildEnterprise(topology, *site, config, *site->borderRouter);

  if (config.applyDmzAcls) applyDmzPolicy(*site);
  topology.computeRoutes();
  return site;
}

std::unique_ptr<Site> buildSupercomputerCenter(net::Topology& topology,
                                               const SiteConfig& config) {
  validateSiteConfig(config, "buildSupercomputerCenter");
  auto site = std::make_unique<Site>(topology, SiteKind::kSupercomputerCenter);
  auto& ctx = topology.ctx();

  site->borderRouter = &topology.addRouter("border", net::SwitchProfile::scienceDmz());
  buildRemoteAndWan(topology, *site, config, *site->borderRouter);

  // The center front-end IS the DMZ: a deep-buffered core switch.
  site->dmzSwitch = &topology.addSwitch("core-switch", net::SwitchProfile::scienceDmz());
  topology.connect(*site->borderRouter, *site->dmzSwitch,
                   lanLink(config.wan.rate, config.wan.mtu));

  // DTN pool sharing the parallel filesystem.
  site->parallelFs = &site->addFilesystem(ctx, dtn::StorageProfile::parallelFsBackend());
  for (int i = 0; i < config.dtnCount; ++i) {
    auto& host = topology.addHost("dtn-" + std::to_string(i),
                                  net::Address(10, 10, 1, static_cast<std::uint8_t>(10 + i)));
    topology.connect(host, *site->dmzSwitch, lanLink(config.wan.rate, config.wan.mtu));
    auto& node = site->addDtnNode(host, site->parallelFs->storage(), config.dtnProfile);
    node.attachFilesystem(site->parallelFs);
    site->dtns.push_back(&node);
  }

  // Compute nodes mount the same filesystem (catalog visibility is the
  // "no double copy" property; their network ports stay off the WAN path).
  for (int i = 0; i < config.computeNodeCount; ++i) {
    auto& host = topology.addHost("compute-" + std::to_string(i),
                                  net::Address(10, 10, 2, static_cast<std::uint8_t>(1 + i)));
    topology.connect(host, *site->dmzSwitch, lanLink(config.wan.rate, config.wan.mtu));
    site->computeNodes.push_back(&host);
  }

  site->perfsonarHost = &topology.addHost("ps", net::Address(10, 10, 1, 250));
  topology.connect(*site->perfsonarHost, *site->dmzSwitch,
                   lanLink(config.wan.rate, config.wan.mtu));

  buildEnterprise(topology, *site, config, *site->borderRouter);

  if (config.applyDmzAcls) applyDmzPolicy(*site);
  topology.computeRoutes();
  return site;
}

std::unique_ptr<Site> buildBigDataSite(net::Topology& topology, const SiteConfig& config) {
  validateSiteConfig(config, "buildBigDataSite");
  auto site = std::make_unique<Site>(topology, SiteKind::kBigDataSite);
  auto& ctx = topology.ctx();

  // Redundant borders, both reaching the WAN core.
  site->borderRouter = &topology.addRouter("border-1", net::SwitchProfile::scienceDmz());
  auto& border2 = topology.addRouter("border-2", net::SwitchProfile::scienceDmz());
  auto& wanCore = buildRemoteAndWan(topology, *site, config, *site->borderRouter);
  net::LinkParams span;
  span.rate = config.wan.rate;
  span.delay = config.wan.delay;
  span.mtu = config.wan.mtu;
  topology.connect(wanCore, border2, span);

  // Data-service switch plane with the DTN cluster.
  site->dmzSwitch = &topology.addSwitch("data-switch", net::SwitchProfile::scienceDmz());
  topology.connect(*site->borderRouter, *site->dmzSwitch,
                   lanLink(config.wan.rate, config.wan.mtu));
  topology.connect(border2, *site->dmzSwitch, lanLink(config.wan.rate, config.wan.mtu));

  site->parallelFs = &site->addFilesystem(ctx, dtn::StorageProfile::parallelFsBackend());
  for (int i = 0; i < config.dtnCount; ++i) {
    auto& host = topology.addHost("xfer-" + std::to_string(i),
                                  net::Address(10, 10, 1, static_cast<std::uint8_t>(10 + i)));
    topology.connect(host, *site->dmzSwitch, lanLink(config.wan.rate, config.wan.mtu));
    auto& node = site->addDtnNode(host, site->parallelFs->storage(), config.dtnProfile);
    node.attachFilesystem(site->parallelFs);
    site->dtns.push_back(&node);
  }

  site->perfsonarHost = &topology.addHost("ps", net::Address(10, 10, 1, 250));
  topology.connect(*site->perfsonarHost, *site->dmzSwitch,
                   lanLink(config.wan.rate, config.wan.mtu));

  // Enterprise rides the same front-end but behind its firewalls; the
  // science flows never traverse them.
  buildEnterprise(topology, *site, config, *site->dmzSwitch);

  if (config.applyDmzAcls) applyDmzPolicy(*site);
  topology.computeRoutes();
  return site;
}

}  // namespace scidmz::core
