// A Site: a built topology plus the role annotations the design-pattern
// machinery reasons over (which device is the border router, which hosts
// are DTNs, where the measurement host sits, ...). Builders in
// site_builder.hpp produce Sites for each of the paper's reference
// designs; the validator and report generator consume them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dtn/dtn_node.hpp"
#include "dtn/storage.hpp"
#include "net/topology.hpp"

namespace scidmz::core {

enum class SiteKind {
  kGeneralPurposeCampus,  ///< baseline anti-pattern: DTN behind the firewall
  kSimpleScienceDmz,      ///< Figure 3
  kSupercomputerCenter,   ///< Figure 4
  kBigDataSite,           ///< Figure 5
};

[[nodiscard]] constexpr std::string_view toString(SiteKind k) {
  switch (k) {
    case SiteKind::kGeneralPurposeCampus: return "general-purpose campus";
    case SiteKind::kSimpleScienceDmz: return "simple Science DMZ";
    case SiteKind::kSupercomputerCenter: return "supercomputer center";
    case SiteKind::kBigDataSite: return "big data site";
  }
  return "?";
}

class Site {
 public:
  Site(net::Topology& topology, SiteKind kind) : topology_(topology), kind_(kind) {}

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] net::Topology& topology() { return topology_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] SiteKind kind() const { return kind_; }

  // --- roles (non-owning; devices live in the topology) -----------------
  net::RouterDevice* borderRouter = nullptr;
  net::SwitchDevice* dmzSwitch = nullptr;
  net::FirewallDevice* enterpriseFirewall = nullptr;
  net::Host* perfsonarHost = nullptr;
  net::Host* remotePerfsonarHost = nullptr;
  std::vector<dtn::DataTransferNode*> dtns;
  dtn::DataTransferNode* remoteDtn = nullptr;
  std::vector<net::Host*> enterpriseHosts;
  std::vector<net::Host*> computeNodes;
  net::Link* wanLink = nullptr;
  dtn::ParallelFilesystem* parallelFs = nullptr;

  /// The local transfer endpoint (first DTN), for convenience.
  [[nodiscard]] dtn::DataTransferNode* primaryDtn() const {
    return dtns.empty() ? nullptr : dtns.front();
  }

  // --- ownership helpers for site-scoped objects -------------------------
  dtn::StorageSubsystem& addStorage(net::Context& ctx, dtn::StorageProfile profile) {
    storages_.push_back(std::make_unique<dtn::StorageSubsystem>(ctx, profile));
    return *storages_.back();
  }
  dtn::DataTransferNode& addDtnNode(net::Host& host, dtn::StorageSubsystem& storage,
                                    dtn::DtnProfile profile) {
    nodes_.push_back(std::make_unique<dtn::DataTransferNode>(host, storage, profile));
    return *nodes_.back();
  }
  dtn::ParallelFilesystem& addFilesystem(net::Context& ctx, dtn::StorageProfile profile) {
    filesystems_.push_back(std::make_unique<dtn::ParallelFilesystem>(ctx, profile));
    return *filesystems_.back();
  }

 private:
  net::Topology& topology_;
  SiteKind kind_;
  std::vector<std::unique_ptr<dtn::StorageSubsystem>> storages_;
  std::vector<std::unique_ptr<dtn::DataTransferNode>> nodes_;
  std::vector<std::unique_ptr<dtn::ParallelFilesystem>> filesystems_;
};

}  // namespace scidmz::core
