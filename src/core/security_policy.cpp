#include "core/security_policy.hpp"

namespace scidmz::core {
namespace {

void permitService(net::AclTable& acl, const DmzServicePolicy& policy, net::Address host,
                   net::Protocol proto, net::PortRange ports, const char* comment) {
  const net::Prefix hostPrefix{host, 32};
  // Inbound to the service port.
  net::AclRule in;
  in.action = net::AclAction::kPermit;
  in.src = policy.collaborators;
  in.dst = hostPrefix;
  in.proto = proto;
  in.dstPorts = ports;
  in.comment = comment;
  acl.append(in);
  // Return traffic of locally-initiated sessions anchored on the same
  // service port at the far end.
  net::AclRule back;
  back.action = net::AclAction::kPermit;
  back.src = policy.collaborators;
  back.dst = hostPrefix;
  back.proto = proto;
  back.srcPorts = ports;
  back.comment = comment;
  acl.append(back);
}

}  // namespace

net::AclTable compileDmzAcl(const DmzServicePolicy& policy) {
  net::AclTable acl{net::AclAction::kDeny};

  // Everything sourced inside the institution may leave.
  net::AclRule outbound;
  outbound.action = net::AclAction::kPermit;
  outbound.src = policy.localNetworks;
  outbound.comment = "local networks outbound";
  acl.append(outbound);

  // Transit toward the enterprise zone is not the DMZ's problem: hand it
  // to the enterprise firewall rather than dropping it here.
  net::AclRule transit;
  transit.action = net::AclAction::kPermit;
  transit.dst = policy.enterpriseNetworks;
  transit.comment = "transit to enterprise (firewalled downstream)";
  acl.append(transit);

  for (const auto dtn : policy.dtnAddresses) {
    permitService(acl, policy, dtn, net::Protocol::kTcp,
                  net::PortRange::single(kGridFtpControlPort), "gridftp control");
    permitService(acl, policy, dtn, net::Protocol::kTcp, kGridFtpDataPorts, "gridftp data");
    permitService(acl, policy, dtn, net::Protocol::kUdp,
                  net::PortRange::single(kRocePort), "roce data");
  }
  for (const auto host : policy.measurementHosts) {
    permitService(acl, policy, host, net::Protocol::kUdp, kOwampPorts, "owamp probes");
    permitService(acl, policy, host, net::Protocol::kTcp,
                  net::PortRange::single(kBwctlPort), "bwctl tests");
  }
  return acl;
}

}  // namespace scidmz::core
