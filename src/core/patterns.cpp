#include "core/patterns.hpp"

namespace scidmz::core {

std::string_view describe(Pattern p) {
  switch (p) {
    case Pattern::kLocation:
      return "Deploy the Science DMZ at or near the network perimeter so the "
             "science data path involves as few devices as possible and stays "
             "separate from the general-purpose network.";
    case Pattern::kDedicatedSystems:
      return "Use purpose-built, tuned Data Transfer Nodes running only data "
             "transfer applications, matched to the WAN capacity and backed "
             "by adequate storage.";
    case Pattern::kMonitoring:
      return "Integrate active test and measurement (perfSONAR: OWAMP loss "
             "probes, BWCTL throughput tests) so soft failures are found and "
             "fixed before scientists notice.";
    case Pattern::kAppropriateSecurity:
      return "Enforce security with router ACLs, IDS and per-service policy "
             "scaled to the data rate, instead of stateful firewalls whose "
             "buffering collapses TCP.";
  }
  return "";
}

}  // namespace scidmz::core
