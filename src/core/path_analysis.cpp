#include "core/path_analysis.hpp"

#include <algorithm>

#include "net/firewall.hpp"
#include "tcp/mathis.hpp"

namespace scidmz::core {

std::optional<PathAssessment> assessPath(const net::Topology& topology, net::Address src,
                                         net::Address dst, PathAssumptions assumptions) {
  const auto path = topology.trace(src, dst);
  if (!path || !path->complete()) return std::nullopt;

  PathAssessment out;
  out.description = path->toString();
  out.hopCount = path->hops.size();
  out.bottleneck = path->bottleneckRate();
  out.rtt = path->propagationDelay() * 2;
  out.bdp = tcp::bandwidthDelayWindow(out.bottleneck, out.rtt);

  // MSS from the smallest MTU on the path.
  sim::DataSize minMtu = sim::DataSize::bytes(9000);
  for (const auto& hop : path->hops) minMtu = std::min(minMtu, hop.link->mtu());
  out.mss = minMtu - net::kTcpIpHeaderBytes;

  for (auto* device : path->devices()) {
    if (dynamic_cast<net::FirewallDevice*>(device) != nullptr) {
      out.crossesFirewall = true;
      break;
    }
  }

  const auto window =
      assumptions.windowScalingBroken
          ? sim::DataSize::bytes(65535)
          : std::min(assumptions.endpoint.rcvBuf, assumptions.endpoint.sndBuf);
  out.windowLimitedRate = tcp::lossFreeThroughput(out.bottleneck, window, out.rtt);
  out.lossLimitedRate = assumptions.lossRate > 0
                            ? tcp::mathisThroughput(out.mss, out.rtt, assumptions.lossRate)
                            : out.bottleneck;
  out.expectedThroughput = std::min({out.bottleneck, out.windowLimitedRate,
                                     out.lossLimitedRate});
  return out;
}

}  // namespace scidmz::core
