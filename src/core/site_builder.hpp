// Builders for the paper's reference designs (Figures 3-5) and for the
// general-purpose-campus baseline they improve upon. Every builder creates
// a complete scenario: a remote collaborator DTN across a WAN, the site
// network, DTN(s) with storage, and measurement hosts, with routing
// computed and (where the design calls for it) ACL policy applied.
#pragma once

#include <memory>

#include "core/site.hpp"
#include "net/firewall.hpp"

namespace scidmz::core {

struct WanConfig {
  sim::DataRate rate = sim::DataRate::gigabitsPerSecond(10);
  /// One-way propagation delay of the WAN span.
  sim::Duration delay = sim::Duration::milliseconds(10);
  sim::DataSize mtu = sim::DataSize::bytes(9000);
};

struct SiteConfig {
  WanConfig wan;
  /// Tuning of the local transfer host(s).
  dtn::DtnProfile dtnProfile;
  dtn::StorageProfile dtnStorage = dtn::StorageProfile::raidArray();
  /// Remote collaborator endpoint (always a proper DTN).
  dtn::DtnProfile remoteProfile;
  dtn::StorageProfile remoteStorage = dtn::StorageProfile::raidArray();
  net::FirewallProfile firewall = net::FirewallProfile::enterprise10G();
  int enterpriseHostCount = 3;
  /// Campus access-layer link speed (enterprise hosts, campus-side DTN in
  /// the baseline design).
  sim::DataRate campusLinkRate = sim::DataRate::gigabitsPerSecond(1);
  /// Install the default-deny DMZ ACL policy on the DMZ switch.
  bool applyDmzAcls = true;
  /// Number of DTNs (supercomputer/big-data designs).
  int dtnCount = 4;
  /// Compute nodes mounting the parallel filesystem (supercomputer design).
  int computeNodeCount = 4;
};

/// Baseline: everything — including the would-be transfer server — sits on
/// the campus LAN behind the enterprise firewall. This is the "before"
/// picture in every Section 6 use case.
std::unique_ptr<Site> buildGeneralPurposeCampus(net::Topology& topology, const SiteConfig& config);

/// Figure 3: border router -> DMZ switch -> {DTN, perfSONAR}, enterprise
/// network behind its firewall off the same border router, ACL policy on
/// the DMZ switch instead of a firewall in the science path.
std::unique_ptr<Site> buildSimpleScienceDmz(net::Topology& topology, const SiteConfig& config);

/// Figure 4: the whole center front-end is the DMZ — border, core switch,
/// DTN pool writing into a parallel filesystem shared with compute nodes.
std::unique_ptr<Site> buildSupercomputerCenter(net::Topology& topology, const SiteConfig& config);

/// Figure 5: LHC-scale data cluster — redundant borders, a data-service
/// switch plane with a DTN cluster, enterprise network behind redundant
/// firewalls hanging off the same front-end.
std::unique_ptr<Site> buildBigDataSite(net::Topology& topology, const SiteConfig& config);

}  // namespace scidmz::core
