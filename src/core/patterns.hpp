// The four Science DMZ sub-patterns (Section 3 of the paper), as an
// enumeration the validator and reports key off. Each design rule checked
// by the validator belongs to exactly one pattern.
#pragma once

#include <string_view>

namespace scidmz::core {

enum class Pattern {
  kLocation,             ///< §3.1 proper location to reduce complexity
  kDedicatedSystems,     ///< §3.2 the Data Transfer Node
  kMonitoring,           ///< §3.3 performance measurement (perfSONAR)
  kAppropriateSecurity,  ///< §3.4 security without performance penalty
};

[[nodiscard]] constexpr std::string_view toString(Pattern p) {
  switch (p) {
    case Pattern::kLocation: return "location";
    case Pattern::kDedicatedSystems: return "dedicated-systems";
    case Pattern::kMonitoring: return "monitoring";
    case Pattern::kAppropriateSecurity: return "appropriate-security";
  }
  return "?";
}

[[nodiscard]] std::string_view describe(Pattern p);

}  // namespace scidmz::core
