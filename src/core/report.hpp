// Human-readable site assessment: roles, science-path analysis, and the
// validator's findings grouped by pattern — the report a network engineer
// would hand a campus CIO after a Science DMZ review.
#pragma once

#include <string>

#include "core/path_analysis.hpp"
#include "core/site.hpp"
#include "core/validator.hpp"

namespace scidmz::core {

/// Render a full assessment (roles + path analysis + findings).
[[nodiscard]] std::string renderSiteReport(const Site& site, const ValidationResult& validation,
                                           const PathAssumptions& assumptions = {});

/// Render just the findings list.
[[nodiscard]] std::string renderFindings(const ValidationResult& validation);

}  // namespace scidmz::core
