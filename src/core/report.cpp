#include "core/report.hpp"

namespace scidmz::core {
namespace {

const char* severityLabel(Severity s) {
  return s == Severity::kCritical ? "CRITICAL" : "warning";
}

}  // namespace

std::string renderFindings(const ValidationResult& validation) {
  if (validation.clean()) {
    return "  no findings: all four design patterns satisfied\n";
  }
  std::string out;
  for (const auto& v : validation.violations) {
    out += "  [";
    out += severityLabel(v.severity);
    out += "] ";
    out += toString(patternOf(v.rule));
    out += " / ";
    out += toString(v.rule);
    out += " (";
    out += v.subject;
    out += ")\n      ";
    out += v.detail;
    out += "\n";
  }
  return out;
}

std::string renderSiteReport(const Site& site, const ValidationResult& validation,
                             const PathAssumptions& assumptions) {
  std::string out;
  out += "=== Science DMZ site assessment: ";
  out += toString(site.kind());
  out += " ===\n";

  out += "roles:\n";
  auto role = [&out](const char* name, const std::string& value) {
    out += "  ";
    out += name;
    out += ": ";
    out += value.empty() ? "(none)" : value;
    out += "\n";
  };
  role("border router", site.borderRouter ? site.borderRouter->name() : "");
  role("dmz switch", site.dmzSwitch ? site.dmzSwitch->name() : "");
  role("enterprise firewall",
       site.enterpriseFirewall ? site.enterpriseFirewall->name() : "");
  role("measurement host", site.perfsonarHost ? site.perfsonarHost->name() : "");
  std::string dtnNames;
  for (const auto* d : site.dtns) {
    if (!dtnNames.empty()) dtnNames += ", ";
    dtnNames += d->host().name();
  }
  role("data transfer nodes", dtnNames);

  if (site.remoteDtn != nullptr && site.primaryDtn() != nullptr) {
    const auto assessment =
        assessPath(site.topology(), site.remoteDtn->host().address(),
                   site.primaryDtn()->host().address(), assumptions);
    if (assessment) {
      out += "science path:\n";
      out += "  " + assessment->description + "\n";
      out += "  bottleneck: " + sim::toString(assessment->bottleneck) +
             ", rtt: " + sim::toString(assessment->rtt) +
             ", bdp: " + sim::toString(assessment->bdp) + "\n";
      out += "  crosses firewall: ";
      out += assessment->crossesFirewall ? "YES" : "no";
      out += "\n";
      out += "  expected throughput: " + sim::toString(assessment->expectedThroughput) +
             " (window bound " + sim::toString(assessment->windowLimitedRate) +
             ", loss bound " + sim::toString(assessment->lossLimitedRate) + ")\n";
    } else {
      out += "science path: UNROUTABLE\n";
    }
  }

  out += "findings:\n";
  out += renderFindings(validation);
  return out;
}

}  // namespace scidmz::core
