// Analytic assessment of a science path: hops, bottleneck, RTT, BDP, and
// the Mathis-equation throughput prediction under an assumed residual loss
// rate — the back-of-envelope a network engineer runs before and after a
// deployment (and the analytic line of Figure 1).
#pragma once

#include <optional>
#include <string>

#include "net/topology.hpp"
#include "tcp/connection.hpp"

namespace scidmz::core {

struct PathAssessment {
  std::string description;           ///< "src -> hop -> ... -> dst"
  std::size_t hopCount = 0;
  sim::DataRate bottleneck = sim::DataRate::zero();
  sim::Duration rtt = sim::Duration::zero();
  sim::DataSize bdp = sim::DataSize::zero();      ///< Equation 2 window
  sim::DataSize mss = sim::DataSize::zero();
  bool crossesFirewall = false;

  /// Ceiling imposed by the endpoint's advertised window.
  sim::DataRate windowLimitedRate = sim::DataRate::zero();
  /// Mathis bound at the assumed loss rate (Equation 1).
  sim::DataRate lossLimitedRate = sim::DataRate::zero();
  /// min(bottleneck, window bound, loss bound): the expected throughput.
  sim::DataRate expectedThroughput = sim::DataRate::zero();
};

struct PathAssumptions {
  /// Residual random loss assumed on the path (0 = clean).
  double lossRate = 0.0;
  /// Endpoint TCP settings used for the window ceiling.
  tcp::TcpConfig endpoint = tcp::TcpConfig::tunedDtn();
  /// Effective window override: when window scaling is broken by a
  /// middlebox the usable window caps at 64 KiB - 1 regardless of buffers.
  bool windowScalingBroken = false;
};

/// Assess the routed path between two hosts. Returns nullopt when routing
/// fails. Pure analysis: no packets are simulated.
[[nodiscard]] std::optional<PathAssessment> assessPath(const net::Topology& topology,
                                                       net::Address src, net::Address dst,
                                                       PathAssumptions assumptions = {});

}  // namespace scidmz::core
