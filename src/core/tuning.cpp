#include "core/tuning.hpp"

#include <algorithm>

namespace scidmz::core {

std::optional<TuningRecommendation> recommendTuning(const net::Topology& topology,
                                                    net::Address src, net::Address dst,
                                                    TuningInputs inputs) {
  PathAssumptions assumptions;
  assumptions.lossRate = inputs.expectedLossRate;
  const auto path = assessPath(topology, src, dst, assumptions);
  if (!path) return std::nullopt;

  TuningRecommendation rec;

  // Socket buffers: 2x BDP so congestion avoidance can probe past the pipe,
  // floored for short paths.
  const auto bdp2 = sim::DataSize::bytes(path->bdp.byteCount() * 2);
  rec.socketBuffers = std::max(bdp2, sim::DataSize::megabytes(4));
  rec.tcp.sndBuf = rec.socketBuffers;
  rec.tcp.rcvBuf = rec.socketBuffers;
  rec.rationale += "buffers = max(2 x BDP " + sim::toString(path->bdp) + ", 4 MB) = " +
                   sim::toString(rec.socketBuffers) + "\n";

  // High-BDP congestion control; pacing to protect shallow buffers.
  rec.tcp.algorithm = tcp::CcAlgorithm::kHtcp;
  rec.tcp.pacing = true;
  rec.rationale += "congestion control = htcp (high-BDP recovery), fq-style pacing on\n";

  // Parallel streams: one suffices on a clean path; under residual loss the
  // aggregate window shrinks with sqrt(p), so stripe until the combined
  // Mathis bound covers the pipe (capped at 8 per the GridFTP defaults).
  if (inputs.expectedLossRate > 0 && path->lossLimitedRate < path->bottleneck) {
    const double deficit = static_cast<double>(path->bottleneck.bps()) /
                           std::max<double>(static_cast<double>(path->lossLimitedRate.bps()), 1.0);
    rec.parallelStreams = static_cast<int>(std::clamp(deficit + 0.999, 2.0, 8.0));
    rec.rationale += "streams = " + std::to_string(rec.parallelStreams) +
                     " (loss-limited to " + sim::toString(path->lossLimitedRate) + " per flow)\n";
  } else {
    rec.parallelStreams = 2;  // headroom against transient events
    rec.rationale += "streams = 2 (clean path; headroom only)\n";
  }

  rec.jumboFrames = path->mss >= sim::DataSize::bytes(8900);
  rec.rationale += rec.jumboFrames
                       ? "jumbo frames supported end-to-end: keep 9000-byte MTU\n"
                       : "path MTU below 9000: fix the narrow segment before anything else\n";
  return rec;
}

}  // namespace scidmz::core
