// The DTN tuning advisor: the fasterdata.es.net "DTN Tuning" guidance the
// paper cites (Section 3.2, footnotes 18-19), codified. Given a routed
// path, produce the host configuration a reference DTN should run.
#pragma once

#include <optional>
#include <string>

#include "core/path_analysis.hpp"
#include "dtn/dtn_node.hpp"

namespace scidmz::core {

struct TuningRecommendation {
  /// Ready-to-use TCP settings (buffers, CC algorithm, pacing).
  tcp::TcpConfig tcp;
  /// Socket buffer target: 2x the path BDP, floored at 4 MB.
  sim::DataSize socketBuffers = sim::DataSize::zero();
  /// GridFTP-style parallel streams for the path's loss regime.
  int parallelStreams = 1;
  /// Whether the path supports (and so the host should use) jumbo frames.
  bool jumboFrames = false;
  /// Human-readable explanation, one line per decision.
  std::string rationale;

  /// Bundle into a DTN profile directly usable by DataTransferNode.
  [[nodiscard]] dtn::DtnProfile asDtnProfile() const {
    dtn::DtnProfile profile;
    profile.tcp = tcp;
    profile.parallelStreams = parallelStreams;
    profile.dedicatedApplicationSet = true;
    return profile;
  }
};

struct TuningInputs {
  /// Residual loss the path is expected to carry (0 for a clean DMZ path;
  /// use measured OWAMP rates when available).
  double expectedLossRate = 0.0;
};

/// Recommend host tuning for transfers between two addresses. Returns
/// nullopt when the path is unroutable.
[[nodiscard]] std::optional<TuningRecommendation> recommendTuning(
    const net::Topology& topology, net::Address src, net::Address dst,
    TuningInputs inputs = {});

}  // namespace scidmz::core
