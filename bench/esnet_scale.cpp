// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run esnet_scale [--domains N]`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("esnet_scale"); }
