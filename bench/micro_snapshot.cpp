// Warm-started sweeps: the snapshot seam's headline number.
//
// A parameter sweep whose cells share a warmup prefix (identical topology
// and flows until the swept parameter kicks in) can run that prefix ONCE,
// snapshot it, and restore per cell instead of re-simulating it. This bench
// pins the claim down on the canonical DemoCell (see
// src/scenario/checkpoint.hpp):
//
//   - cold: N cells each simulate the full [0, 1s] window;
//   - warm: one cell simulates [0, 0.8s], saves a scidmz.snap.v1 blob, and
//     each of the N cells rebuilds, restores, and simulates only [0.8s, 1s].
//
// Both paths must produce byte-identical per-cell tables — a warm start
// that changes results is a correctness bug, not an optimization — and the
// warm path must be >= 2x faster end to end (the acceptance bar; the
// restore itself is microseconds, so the speedup tracks the skipped
// warmup fraction). Per-cell snapshot blob sizes land in the
// snapshot_bytes column of BENCH_micro_snapshot.json and the cold/warm
// events_per_second pair is ratcheted by CI (tools/perf_ratchet.py).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/context.hpp"
#include "net/flow.hpp"
#include "scenario/bench_io.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/harness.hpp"
#include "sim/sweep.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

constexpr int kCells = 8;
constexpr auto kWarmupEnd = 800_ms;
constexpr auto kTail = 200_ms;

void finishSnapshotCell(scenario::DemoCell& cell, sim::SweepCell& stats,
                        std::uint64_t snapshotBytes) {
  scenario::Scenario& s = cell.scenario();
  stats.eventsExecuted = s.simulator.eventsExecuted();
  stats.packetsForwarded = s.ctx.packetsForwarded();
  stats.flowsCreated = net::flowFactory(s.ctx).flowsCreated();
  stats.snapshotBytes = snapshotBytes;
}

/// Cold path: the full window from construction.
std::string runColdCell(sim::SweepCell& stats) {
  scenario::DemoCell cell;
  cell.scenario().simulator.runFor(kWarmupEnd);
  cell.scenario().simulator.runFor(kTail);
  finishSnapshotCell(cell, stats, 0);
  return cell.table();
}

/// Warm path: rebuild, overlay the shared warmup snapshot, run the tail.
std::string runWarmCell(sim::SweepCell& stats, const std::vector<std::uint8_t>& blob) {
  scenario::DemoCell cell;
  std::string error;
  if (!scenario::restoreSnapshot(cell.scenario(), blob, &error)) {
    return "restore failed: " + error;
  }
  cell.scenario().simulator.runFor(kTail);
  finishSnapshotCell(cell, stats, blob.size());
  return cell.table();
}

}  // namespace

int main() {
  bench::header("micro_snapshot: warm-started sweep via scidmz.snap.v1",
                "DESIGN.md: state & serialization");

  // The shared warmup prefix, simulated exactly once.
  scenario::DemoCell warmup;
  warmup.scenario().simulator.runFor(kWarmupEnd);
  const scenario::SnapshotBlob blob = scenario::saveSnapshot(warmup.scenario());
  if (!blob.ok()) {
    std::fprintf(stderr, "micro_snapshot: %s\n", blob.error.c_str());
    return 1;
  }

  sim::SweepRunner sweep;
  const auto cold = sweep.run<std::string>(
      kCells, [](sim::SweepCell& cell) { return runColdCell(cell); }, "cold_full_window");
  const auto warm = sweep.run<std::string>(
      kCells, [&blob](sim::SweepCell& cell) { return runWarmCell(cell, blob.bytes); },
      "warm_restored_tail");

  const auto& coldRun = sweep.history()[0];
  const auto& warmRun = sweep.history()[1];

  bool identical = true;
  for (int i = 0; i < kCells; ++i) {
    if (warm[static_cast<std::size_t>(i)] != cold[static_cast<std::size_t>(i)]) {
      identical = false;
      std::fprintf(stderr, "micro_snapshot: cell %d diverged\ncold:\n%swarm:\n%s", i,
                   cold[static_cast<std::size_t>(i)].c_str(),
                   warm[static_cast<std::size_t>(i)].c_str());
    }
  }

  const double coldWall = coldRun.cellSecondsSum();
  const double warmWall = warmRun.cellSecondsSum();
  const double speedup = warmWall > 0 ? coldWall / warmWall : 0.0;
  bench::row("cold:  %d cells x [0, %.1fs], %.3fs cell time, %llu events", kCells,
             (kWarmupEnd + kTail).toSeconds(), coldWall,
             static_cast<unsigned long long>(coldRun.totalEvents()));
  bench::row("warm:  %d cells x restore(%zu bytes) + [%.1fs, %.1fs], %.3fs cell time, %llu events",
             kCells, blob.bytes.size(), kWarmupEnd.toSeconds(),
             (kWarmupEnd + kTail).toSeconds(), warmWall,
             static_cast<unsigned long long>(warmRun.totalEvents()));
  bench::row("tables byte-identical: %s", identical ? "yes" : "NO");
  bench::row("warm-start speedup: %.1fx (acceptance: >= 2x)", speedup);

  bench::writeSweepReport(sweep, "micro_snapshot");
  std::printf("%s", cold[0].c_str());
  return identical && speedup >= 2.0 ? 0 : 1;
}
