// Sharded-scheduler scaling: one scenario, split across worker domains.
//
// The esnet_scale ring (src/scenario/esnet_scale.hpp) runs at domains in
// {1, 2, 4, 8}. Two claims are pinned down:
//
//   - determinism: the per-site delivered-bytes table (exact byte counts)
//     is identical at every domain count — a partition that changes
//     results is a correctness bug, not an optimization;
//   - scaling: events/s at 8 domains must be >= 2x the 1-domain baseline
//     (the acceptance bar; the ISSUE target is 3x on 8 cores). The bar is
//     only enforced when the machine exposes >= 8 hardware threads —
//     conservative parallel DES cannot beat itself on a serialized box —
//     but the tables are checked everywhere.
//
// Per-config events/s lands in BENCH_micro_shard.json (with the domains
// and domain_events columns) and is ratcheted by CI (tools/perf_ratchet.py).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "scenario/bench_io.hpp"
#include "scenario/esnet_scale.hpp"
#include "sim/sweep.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

constexpr int kDomainCounts[] = {1, 2, 4, 8};

scenario::EsnetScaleConfig benchConfig(int domains) {
  scenario::EsnetScaleConfig cfg;  // bench-sized: 8 sites x 16 DTNs x 2 flows
  cfg.sites = 8;
  cfg.hostsPerSite = 16;
  cfg.flowsPerHost = 2;
  cfg.runDuration = 400_ms;
  cfg.domains = domains;
  return cfg;
}

/// Exact per-site byte counts — the strict identity artifact.
std::string tableKey(const scenario::EsnetScaleResult& r) {
  std::string out;
  for (std::size_t i = 0; i < r.deliveredBySite.size(); ++i) {
    out += bench::formatRow("site %zu: %llu bytes\n", i, r.deliveredBySite[i]);
  }
  return out;
}

}  // namespace

int main() {
  bench::header("micro_shard: sharded parallel DES on the esnet_scale ring",
                "DESIGN.md: sharded execution");

  // One sweep worker: domain threads are the parallelism under test.
  sim::SweepRunner sweep(1);
  std::vector<std::string> tables;
  std::vector<double> eventsPerSec;
  std::vector<unsigned long long> events;

  for (const int domains : kDomainCounts) {
    const auto cfg = benchConfig(domains);
    const auto results = sweep.run<scenario::EsnetScaleResult>(
        1, [&cfg](sim::SweepCell& cell) { return runEsnetScale(cfg, cell); },
        "domains_" + std::to_string(domains));
    const auto& run = sweep.lastRun();
    tables.push_back(tableKey(results[0]));
    events.push_back(run.totalEvents());
    eventsPerSec.push_back(run.wallSeconds > 0
                               ? static_cast<double>(run.totalEvents()) / run.wallSeconds
                               : 0.0);
  }

  bool identical = true;
  for (std::size_t i = 1; i < tables.size(); ++i) {
    if (tables[i] != tables[0]) {
      identical = false;
      std::fprintf(stderr,
                   "micro_shard: domains=%d diverged from domains=1\nbase:\n%sgot:\n%s",
                   kDomainCounts[i], tables[0].c_str(), tables[i].c_str());
    }
  }

  bench::row("%-8s %-12s %-14s %-10s", "domains", "events", "events_per_s", "speedup");
  for (std::size_t i = 0; i < tables.size(); ++i) {
    bench::row("%-8d %-12llu %-14.0f %-10.2f", kDomainCounts[i], events[i], eventsPerSec[i],
               eventsPerSec[0] > 0 ? eventsPerSec[i] / eventsPerSec[0] : 0.0);
  }

  const double speedup = eventsPerSec[0] > 0 ? eventsPerSec[3] / eventsPerSec[0] : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool enforceSpeedup = hw >= 8;
  bench::row("tables identical across domain counts: %s", identical ? "yes" : "NO");
  bench::row("8-domain speedup: %.2fx (acceptance: >= 2x%s)", speedup,
             enforceSpeedup ? ""
                            : bench::formatRow("; not enforced on %u hardware threads", hw).c_str());

  bench::writeSweepReport(sweep, "micro_shard");
  std::printf("%s", tables[0].c_str());
  return identical && (!enforceSpeedup || speedup >= 2.0) ? 0 : 1;
}
