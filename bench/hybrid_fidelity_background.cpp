// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run hybrid_fidelity_background`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("hybrid_fidelity_background"); }
