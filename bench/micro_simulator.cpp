// Infrastructure microbenchmarks (google-benchmark): the discrete-event
// kernel and the hot per-packet paths that bound how much simulated
// traffic the figure benches can afford.
#include <benchmark/benchmark.h>

#include "net/host.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      auto ev = queue.pop();
      benchmark::DoNotOptimize(ev.at);
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

/// Full packet forwarding: host -> switch -> host probe delivery.
void BM_PacketForwarding(benchmark::State& state) {
  sim::Simulator simulator;
  sim::Rng rng{2};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
  auto& a = topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& sw = topo.addSwitch("sw");
  auto& b = topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 100_Gbps;
  lp.delay = 1_us;
  topo.connect(a, sw, lp);
  topo.connect(sw, b, lp);
  topo.computeRoutes();

  net::Packet probe;
  probe.flow = net::FlowKey{a.address(), b.address(), 99, 7, net::Protocol::kUdp};
  probe.body = net::ProbeHeader{};
  probe.payload = 1000_B;

  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) a.send(probe);
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PacketForwarding);

/// Sustained TCP at 10G: events per simulated second of a full flow.
void BM_TcpSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::Rng rng{3};
    sim::Logger logger;
    net::Context ctx{simulator, rng, logger};
    net::Topology topo{ctx};
    auto& a = topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& b = topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams lp;
    lp.rate = 10_Gbps;
    lp.delay = 1_ms;
    lp.mtu = 9000_B;
    topo.connect(a, b, lp);
    topo.computeRoutes();

    tcp::TcpConfig cfg = tcp::TcpConfig::tunedDtn();
    tcp::TcpListener listener{b, 5001, cfg};
    tcp::TcpConnection client{a, b.address(), 5001, cfg};
    client.onEstablished = [&client] { client.sendData(10_GB); };
    client.start();
    simulator.runFor(1_s);
    benchmark::DoNotOptimize(simulator.eventsExecuted());
  }
}
BENCHMARK(BM_TcpSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
