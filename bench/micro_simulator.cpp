// Infrastructure microbenchmarks (google-benchmark): the discrete-event
// kernel and the hot per-packet paths that bound how much simulated
// traffic the figure benches can afford.
//
// The BM_Legacy* benchmarks run a copy of the seed event queue
// (std::function callbacks, binary priority_queue, unordered_set lazy
// cancellation) against the same workloads as the current queue, so one
// binary prints before/after events-per-second for the schedule/pop hot
// path. Compare the items_per_second counters of each Legacy/current pair.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "net/host.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

/// The seed-era queue, verbatim: heap-allocating std::function callbacks,
/// binary heap, unordered_set cancellation probing on every peek/pop.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule(sim::SimTime at, Callback cb) {
    const std::uint64_t id = ++next_seq_;
    heap_.push(Entry{at, id, std::move(cb)});
    ++live_;
    return id;
  }

  void cancel(std::uint64_t id) {
    if (id == 0) return;
    if (cancelled_.insert(id).second && live_ > 0) --live_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }

  struct Popped {
    sim::SimTime at;
    Callback cb;
  };
  Popped pop() {
    skipCancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return Popped{top.at, std::move(top.cb)};
  }

 private:
  struct Entry {
    sim::SimTime at;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void skipCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Packet-sized capture, what the link/switch/device forwarding events
/// carry. std::function heap-allocates this; SmallCallback keeps it inline.
struct PacketSizedCapture {
  void* owner = nullptr;
  unsigned char payload[144] = {};
  void operator()() const { benchmark::DoNotOptimize(payload[0]); }
};

template <typename Queue>
void scheduleAndPopLoop(benchmark::State& state) {
  Queue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      auto ev = queue.pop();
      benchmark::DoNotOptimize(ev.at);
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  scheduleAndPopLoop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_LegacyEventQueueScheduleAndPop(benchmark::State& state) {
  scheduleAndPopLoop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleAndPop);

template <typename Queue>
void packetCaptureLoop(benchmark::State& state) {
  Queue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), PacketSizedCapture{});
    }
    while (!queue.empty()) {
      auto ev = queue.pop();
      ev.cb();
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_EventQueuePacketSizedCapture(benchmark::State& state) {
  packetCaptureLoop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueuePacketSizedCapture);

void BM_LegacyEventQueuePacketSizedCapture(benchmark::State& state) {
  packetCaptureLoop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueuePacketSizedCapture);

template <typename Queue, typename Id>
void scheduleCancelLoop(benchmark::State& state) {
  Queue queue;
  std::vector<Id> ids;
  ids.reserve(64);
  std::int64_t t = 0;
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      ids.push_back(queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), [] {}));
    }
    for (int i = 0; i < 64; i += 2) queue.cancel(ids[static_cast<std::size_t>(i)]);
    while (!queue.empty()) {
      auto ev = queue.pop();
      benchmark::DoNotOptimize(ev.at);
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

/// Timer-churn pattern: half of everything scheduled is cancelled before it
/// fires (RTO timers rearmed by every ACK behave like this).
void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  scheduleCancelLoop<sim::EventQueue, sim::EventId>(state);
}
BENCHMARK(BM_EventQueueScheduleCancelPop);

void BM_LegacyEventQueueScheduleCancelPop(benchmark::State& state) {
  scheduleCancelLoop<LegacyEventQueue, std::uint64_t>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleCancelPop);

/// Steady-state churn against a deep heap: the regime the figure benches
/// live in (a single 10G high-BDP flow keeps thousands of packet/timer
/// events in flight).
template <typename Queue>
void deepHeapChurnLoop(benchmark::State& state) {
  Queue queue;
  sim::Rng rng{7};
  std::int64_t t = 0;
  for (int i = 0; i < 4096; ++i) {
    queue.schedule(sim::SimTime::fromNs(static_cast<std::int64_t>(rng.below(1 << 20))),
                   PacketSizedCapture{});
  }
  for (auto _ : state) {
    auto ev = queue.pop();
    benchmark::DoNotOptimize(ev.at);
    queue.schedule(sim::SimTime::fromNs(t + static_cast<std::int64_t>(rng.below(1 << 20))),
                   PacketSizedCapture{});
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EventQueueDeepHeapChurn(benchmark::State& state) {
  deepHeapChurnLoop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueDeepHeapChurn);

void BM_LegacyEventQueueDeepHeapChurn(benchmark::State& state) {
  deepHeapChurnLoop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueDeepHeapChurn);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

/// Full packet forwarding: host -> switch -> host probe delivery.
void BM_PacketForwarding(benchmark::State& state) {
  sim::Simulator simulator;
  sim::Rng rng{2};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
  auto& a = topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& sw = topo.addSwitch("sw");
  auto& b = topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 100_Gbps;
  lp.delay = 1_us;
  topo.connect(a, sw, lp);
  topo.connect(sw, b, lp);
  topo.computeRoutes();

  net::Packet probe;
  probe.flow = net::FlowKey{a.address(), b.address(), 99, 7, net::Protocol::kUdp};
  probe.body = net::ProbeHeader{};
  probe.payload = 1000_B;

  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) a.send(probe);
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PacketForwarding);

/// Sustained TCP at 10G: events per simulated second of a full flow.
void BM_TcpSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::Rng rng{3};
    sim::Logger logger;
    net::Context ctx{simulator, rng, logger};
    net::Topology topo{ctx};
    auto& a = topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& b = topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams lp;
    lp.rate = 10_Gbps;
    lp.delay = 1_ms;
    lp.mtu = 9000_B;
    topo.connect(a, b, lp);
    topo.computeRoutes();

    tcp::TcpConfig cfg = tcp::TcpConfig::tunedDtn();
    tcp::TcpListener listener{b, 5001, cfg};
    tcp::TcpConnection client{a, b.address(), 5001, cfg};
    client.onEstablished = [&client] { client.sendData(10_GB); };
    client.start();
    simulator.runFor(1_s);
    benchmark::DoNotOptimize(simulator.eventsExecuted());
  }
}
BENCHMARK(BM_TcpSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
