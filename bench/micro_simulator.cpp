// Infrastructure microbenchmarks (google-benchmark): the discrete-event
// kernel and the hot per-packet paths that bound how much simulated
// traffic the figure benches can afford.
//
// Two generations of before/after pairs share this binary:
//  * BM_Legacy* runs a copy of the seed event queue (std::function
//    callbacks, binary priority_queue, unordered_set lazy cancellation)
//    against the same workloads as the current queue;
//  * BM_HeapOnly* runs the pre-timing-wheel queue (4-ary heap + slot
//    table, verbatim) against the wheel-fronted current queue on
//    periodic-heavy, irregular-heavy and mixed timer schedules — the
//    workloads the wheel exists for.
// Compare the items_per_second counters of each pair. After the
// microbenchmarks, main() re-measures the HeapOnly/current pairs with a
// fixed op count, prints the ratio table (mirrored to
// micro_simulator.table.json), and runs the timer workloads under the
// SweepRunner so BENCH_sim.json gains events_per_second cells CI can
// ratchet (tools/perf_ratchet.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/host.hpp"
#include "net/topology.hpp"
#include "scenario/bench_io.hpp"
#include "scenario/harness.hpp"
#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/units.hpp"
#include "tcp/connection.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

/// The seed-era queue, verbatim: heap-allocating std::function callbacks,
/// binary heap, unordered_set cancellation probing on every peek/pop.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule(sim::SimTime at, Callback cb) {
    const std::uint64_t id = ++next_seq_;
    heap_.push(Entry{at, id, std::move(cb)});
    ++live_;
    return id;
  }

  void cancel(std::uint64_t id) {
    if (id == 0) return;
    if (cancelled_.insert(id).second && live_ > 0) --live_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }

  struct Popped {
    sim::SimTime at;
    Callback cb;
  };
  Popped pop() {
    skipCancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return Popped{top.at, std::move(top.cb)};
  }

 private:
  struct Entry {
    sim::SimTime at;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void skipCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// The pre-timing-wheel queue, verbatim: the current EventQueue's 4-ary
/// heap, slot table and tombstone compaction, with every schedule going
/// straight to the heap. This is the "before" half of the BM_HeapOnly*
/// pairs — keep it in sync with nothing; it is a historical snapshot.
class HeapOnlyEventQueue {
 public:
  using Callback = sim::SmallCallback<64>;

  template <typename F>
  sim::EventId schedule(sim::SimTime at, F&& cb) {
    const std::uint32_t slot = acquireSlot(std::forward<F>(cb));
    heapPush(HeapEntry{at, ++next_seq_, slot});
    ++live_;
    return sim::EventId{pack(slot, slots_[slot].generation)};
  }

  void cancel(sim::EventId id) {
    if (!id.valid()) return;
    const std::uint32_t slot = unpackSlot(id.value);
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (!s.active || s.tombstone || s.generation != unpackGeneration(id.value)) return;
    s.tombstone = true;
    s.cb.reset();
    --live_;
    ++tombstones_;
    if (tombstones_ > 64 && tombstones_ > live_) compact();
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }

  struct Popped {
    sim::SimTime at;
    Callback cb;
  };
  Popped pop() {
    skipTombstones();
    const HeapEntry top = heap_.front();
    heapPopFront();
    Popped out{top.at, std::move(slots_[top.slot].cb)};
    releaseSlot(top.slot);
    --live_;
    return out;
  }

 private:
  struct HeapEntry {
    sim::SimTime at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  struct Slot {
    Callback cb;
    std::uint32_t generation = 0;
    bool active = false;
    bool tombstone = false;
  };

  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
  }
  static constexpr std::uint32_t unpackSlot(std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32) - 1;
  }
  static constexpr std::uint32_t unpackGeneration(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }

  template <typename F>
  std::uint32_t acquireSlot(F&& cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.cb.assign(std::forward<F>(cb));
    s.active = true;
    s.tombstone = false;
    return slot;
  }

  void releaseSlot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb.reset();
    s.active = false;
    s.tombstone = false;
    ++s.generation;
    free_.push_back(slot);
  }

  void skipTombstones() {
    while (!heap_.empty() && slots_[heap_.front().slot].tombstone) {
      const std::uint32_t slot = heap_.front().slot;
      heapPopFront();
      releaseSlot(slot);
      --tombstones_;
    }
  }

  void compact() {
    std::size_t kept = 0;
    for (const HeapEntry& e : heap_) {
      if (slots_[e.slot].tombstone) {
        releaseSlot(e.slot);
        --tombstones_;
      } else {
        heap_[kept++] = e;
      }
    }
    heap_.resize(kept);
    if (kept > 1) {
      for (std::size_t i = (kept - 2) / kArity + 1; i-- > 0;) siftDown(i, heap_[i]);
    }
  }

  static constexpr std::size_t kArity = 4;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void heapPush(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heapPopFront() {
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) siftDown(0, tail);
  }

  void siftDown(std::size_t i, HeapEntry e) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Packet-sized capture, what the link/switch/device forwarding events
/// carry. std::function heap-allocates this; SmallCallback keeps it inline.
struct PacketSizedCapture {
  void* owner = nullptr;
  unsigned char payload[144] = {};
  void operator()() const { benchmark::DoNotOptimize(payload[0]); }
};

template <typename Queue>
void scheduleAndPopLoop(benchmark::State& state) {
  Queue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      auto ev = queue.pop();
      benchmark::DoNotOptimize(ev.at);
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  scheduleAndPopLoop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_LegacyEventQueueScheduleAndPop(benchmark::State& state) {
  scheduleAndPopLoop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleAndPop);

template <typename Queue>
void packetCaptureLoop(benchmark::State& state) {
  Queue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), PacketSizedCapture{});
    }
    while (!queue.empty()) {
      auto ev = queue.pop();
      ev.cb();
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_EventQueuePacketSizedCapture(benchmark::State& state) {
  packetCaptureLoop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueuePacketSizedCapture);

void BM_LegacyEventQueuePacketSizedCapture(benchmark::State& state) {
  packetCaptureLoop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueuePacketSizedCapture);

template <typename Queue, typename Id>
void scheduleCancelLoop(benchmark::State& state) {
  Queue queue;
  std::vector<Id> ids;
  ids.reserve(64);
  std::int64_t t = 0;
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      ids.push_back(queue.schedule(sim::SimTime::fromNs(t + (i * 7919) % 1000), [] {}));
    }
    for (int i = 0; i < 64; i += 2) queue.cancel(ids[static_cast<std::size_t>(i)]);
    while (!queue.empty()) {
      auto ev = queue.pop();
      benchmark::DoNotOptimize(ev.at);
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

/// Timer-churn pattern: half of everything scheduled is cancelled before it
/// fires (RTO timers rearmed by every ACK behave like this).
void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  scheduleCancelLoop<sim::EventQueue, sim::EventId>(state);
}
BENCHMARK(BM_EventQueueScheduleCancelPop);

void BM_LegacyEventQueueScheduleCancelPop(benchmark::State& state) {
  scheduleCancelLoop<LegacyEventQueue, std::uint64_t>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleCancelPop);

/// Steady-state churn against a deep heap: the regime the figure benches
/// live in (a single 10G high-BDP flow keeps thousands of packet/timer
/// events in flight).
template <typename Queue>
void deepHeapChurnLoop(benchmark::State& state) {
  Queue queue;
  sim::Rng rng{7};
  std::int64_t t = 0;
  for (int i = 0; i < 4096; ++i) {
    queue.schedule(sim::SimTime::fromNs(static_cast<std::int64_t>(rng.below(1 << 20))),
                   PacketSizedCapture{});
  }
  for (auto _ : state) {
    auto ev = queue.pop();
    benchmark::DoNotOptimize(ev.at);
    queue.schedule(sim::SimTime::fromNs(t + static_cast<std::int64_t>(rng.below(1 << 20))),
                   PacketSizedCapture{});
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EventQueueDeepHeapChurn(benchmark::State& state) {
  deepHeapChurnLoop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueDeepHeapChurn);

void BM_LegacyEventQueueDeepHeapChurn(benchmark::State& state) {
  deepHeapChurnLoop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueDeepHeapChurn);

// ---------------------------------------------------------------------------
// Timer-schedule pairs: the workloads the timing wheel exists for. A fleet
// of self-rescheduling timers — probe cadences, pacing ticks, RTO rearms —
// with the pop/fire/reschedule loop the Simulator core runs. kPeriodic uses
// fixed per-timer periods (10 us .. 1 ms, the perfSONAR/pacing regime that
// parks in wheel buckets); kIrregular uses fresh sub-microsecond deltas
// (the datapath regime that bypasses the wheel entirely); kMixed is half
// and half.

enum class ScheduleKind { kPeriodic, kIrregular, kMixed };

constexpr const char* kScheduleNames[] = {"periodic", "irregular", "mixed"};
constexpr int kTimerCount = 4096;

template <typename Queue>
class TimerSchedule {
 public:
  explicit TimerSchedule(ScheduleKind kind) : period_(kTimerCount) {
    for (int i = 0; i < kTimerCount; ++i) {
      const bool periodic = kind == ScheduleKind::kPeriodic ||
                            (kind == ScheduleKind::kMixed && i % 2 == 0);
      period_[static_cast<std::size_t>(i)] =
          periodic ? 10'000 + (static_cast<std::int64_t>(i) * 37'000) % 990'000 : 0;
      armTimer(i, 0);
    }
  }

  /// One simulator step: pop the due event, fire it, reschedule that timer.
  void step() {
    auto ev = queue_.pop();
    ev.cb();
    armTimer(last_fired_, ev.at.ns());
  }

 private:
  void armTimer(int i, std::int64_t now) {
    const std::int64_t p = period_[static_cast<std::size_t>(i)];
    const std::int64_t delta = p > 0 ? p : 1 + static_cast<std::int64_t>(rng_.below(1000));
    int* last = &last_fired_;
    queue_.schedule(sim::SimTime::fromNs(now + delta), [last, i] { *last = i; });
  }

  Queue queue_;
  sim::Rng rng_{11};
  std::vector<std::int64_t> period_;
  int last_fired_ = 0;
};

template <typename Queue>
void timerScheduleLoop(benchmark::State& state, ScheduleKind kind) {
  TimerSchedule<Queue> timers{kind};
  for (auto _ : state) timers.step();
  state.SetItemsProcessed(state.iterations());
}

void BM_EventQueuePeriodicTimers(benchmark::State& state) {
  timerScheduleLoop<sim::EventQueue>(state, ScheduleKind::kPeriodic);
}
BENCHMARK(BM_EventQueuePeriodicTimers);

void BM_HeapOnlyPeriodicTimers(benchmark::State& state) {
  timerScheduleLoop<HeapOnlyEventQueue>(state, ScheduleKind::kPeriodic);
}
BENCHMARK(BM_HeapOnlyPeriodicTimers);

void BM_EventQueueIrregularTimers(benchmark::State& state) {
  timerScheduleLoop<sim::EventQueue>(state, ScheduleKind::kIrregular);
}
BENCHMARK(BM_EventQueueIrregularTimers);

void BM_HeapOnlyIrregularTimers(benchmark::State& state) {
  timerScheduleLoop<HeapOnlyEventQueue>(state, ScheduleKind::kIrregular);
}
BENCHMARK(BM_HeapOnlyIrregularTimers);

void BM_EventQueueMixedTimers(benchmark::State& state) {
  timerScheduleLoop<sim::EventQueue>(state, ScheduleKind::kMixed);
}
BENCHMARK(BM_EventQueueMixedTimers);

void BM_HeapOnlyMixedTimers(benchmark::State& state) {
  timerScheduleLoop<HeapOnlyEventQueue>(state, ScheduleKind::kMixed);
}
BENCHMARK(BM_HeapOnlyMixedTimers);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

/// Full packet forwarding: host -> switch -> host probe delivery.
void BM_PacketForwarding(benchmark::State& state) {
  sim::Simulator simulator;
  sim::Rng rng{2};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
  auto& a = topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& sw = topo.addSwitch("sw");
  auto& b = topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 100_Gbps;
  lp.delay = 1_us;
  topo.connect(a, sw, lp);
  topo.connect(sw, b, lp);
  topo.computeRoutes();

  net::Packet probe;
  probe.flow = net::FlowKey{a.address(), b.address(), 99, 7, net::Protocol::kUdp};
  probe.body = net::ProbeHeader{};
  probe.payload = 1000_B;

  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) a.send(probe);
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PacketForwarding);

/// Sustained TCP at 10G: events per simulated second of a full flow.
void BM_TcpSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::Rng rng{3};
    sim::Logger logger;
    net::Context ctx{simulator, rng, logger};
    net::Topology topo{ctx};
    auto& a = topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& b = topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams lp;
    lp.rate = 10_Gbps;
    lp.delay = 1_ms;
    lp.mtu = 9000_B;
    topo.connect(a, b, lp);
    topo.computeRoutes();

    tcp::TcpConfig cfg = tcp::TcpConfig::tunedDtn();
    net::FlowFactory::Options options;
    options.port = 5001;
    auto flow = net::flowFactory(ctx).create(a, b, cfg, options);
    auto* raw = flow.get();
    flow->onEstablished = [raw] { raw->sendData(10_GB); };
    flow->start();
    simulator.runFor(1_s);
    benchmark::DoNotOptimize(simulator.eventsExecuted());
  }
}
BENCHMARK(BM_TcpSimulatedSecond)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fixed-op-count before/after pairs for the ratio table: same TimerSchedule
// workloads, measured with a wall clock over a fixed number of events so
// the heap-only/wheel ratio is directly comparable run to run. (Absolute
// events/s are machine-dependent; only the ratio is meaningful across
// machines, so this table is NOT a golden.)

template <typename Queue>
double timerEventsPerSecond(ScheduleKind kind, std::int64_t ops) {
  TimerSchedule<Queue> timers{kind};
  for (std::int64_t i = 0; i < ops / 8; ++i) timers.step();  // warm caches
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < ops; ++i) timers.step();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(ops) / elapsed.count();
}

void emitSchedulePairTable() {
  constexpr std::int64_t kOps = 2'000'000;
  bench::header("micro_simulator: timer schedules, heap-only vs wheel+heap",
                "ROADMAP north star: events/s on the kernel hot path");
  bench::Table table{
      "micro_simulator",
      "Event-queue timer schedules: heap-only vs timing-wheel front",
      "ROADMAP north star: events/s on the kernel hot path",
      {bench::Column{"schedule", "%-10s"},
       bench::Column{"heap_only_mev_s", "%16.2f", "heap-only Mev/s"},
       bench::Column{"wheel_mev_s", "%12.2f", "wheel Mev/s"},
       bench::Column{"speedup", "%8.2f", "speedup"}}};
  table.printHeader();
  // Interleaved best-of-N: the two queues alternate within each repetition,
  // so transient machine load hits both sides rather than skewing the ratio,
  // and the max per side approximates unloaded throughput.
  constexpr int kReps = 5;
  for (int k = 0; k < 3; ++k) {
    const auto kind = static_cast<ScheduleKind>(k);
    double before = 0.0;
    double after = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      before = std::max(before, timerEventsPerSecond<HeapOnlyEventQueue>(kind, kOps));
      after = std::max(after, timerEventsPerSecond<sim::EventQueue>(kind, kOps));
    }
    table.emit({kScheduleNames[k], before / 1e6, after / 1e6, after / before});
  }
  table.note("4096 self-rescheduling timers; pop/fire/reschedule loop, 2M events per cell.");
  table.note("Best of 5 interleaved repetitions per queue.");
  table.note("Machine-dependent: compare the speedup column, not absolute rates.");
  table.write();
}

// ---------------------------------------------------------------------------
// Profiler A/B pair: the same timer schedules through the REAL Simulator,
// once with no profiler attached (the production default — the hot loop's
// single nullptr branch) and once with the self-profiler recording every
// event. The "off" side IS the configuration the ratcheted timers_* runs
// below measure, so the 5% ratchet holds the zero-overhead claim across
// PRs; this table additionally shows what "on" costs.

double simulatorTimerEventsPerSecond(ScheduleKind kind, sim::Profiler* profiler,
                                     std::int64_t ops) {
  sim::Simulator simulator;
  if (profiler != nullptr) simulator.setProfiler(profiler);
  constexpr int kTimers = 1024;
  struct Fleet {
    sim::Simulator& simulator;
    std::int64_t ops;
    sim::Rng rng{23};
    std::vector<std::int64_t> period;
    std::int64_t fired = 0;

    void arm(int i) {
      const std::int64_t p = period[static_cast<std::size_t>(i)];
      const std::int64_t delta = p > 0 ? p : 1 + static_cast<std::int64_t>(rng.below(1000));
      simulator.schedule(sim::Duration::nanoseconds(delta), [this, i] {
        if (++fired < ops) arm(i);
      });
    }
  } fleet{simulator, ops, sim::Rng{23}, std::vector<std::int64_t>(kTimers), 0};
  for (int i = 0; i < kTimers; ++i) {
    const bool periodic =
        kind == ScheduleKind::kPeriodic || (kind == ScheduleKind::kMixed && i % 2 == 0);
    fleet.period[static_cast<std::size_t>(i)] =
        periodic ? 10'000 + (static_cast<std::int64_t>(i) * 37'000) % 990'000 : 0;
    fleet.arm(i);
  }
  const auto start = std::chrono::steady_clock::now();
  simulator.run();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(simulator.eventsExecuted()) / elapsed.count();
}

void emitProfilerPairTable() {
  constexpr std::int64_t kOps = 2'000'000;
  bench::header("micro_simulator: event loop, profiler detached vs attached",
                "self-profiling must cost nothing when off (see perf.yml ratchet)");
  bench::Table table{
      "micro_simulator_profiler",
      "Simulator event loop: self-profiler detached vs attached",
      "detached is the ratcheted production path; attached shows probe cost",
      {bench::Column{"schedule", "%-10s"},
       bench::Column{"off_mev_s", "%12.2f", "off Mev/s"},
       bench::Column{"on_mev_s", "%12.2f", "on Mev/s"},
       bench::Column{"on_cost", "%8.2f", "off/on"}}};
  table.printHeader();
  constexpr int kReps = 5;
  for (int k = 0; k < 3; ++k) {
    const auto kind = static_cast<ScheduleKind>(k);
    double off = 0.0;
    double on = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      off = std::max(off, simulatorTimerEventsPerSecond(kind, nullptr, kOps));
      sim::Profiler profiler;  // fresh per repetition: histograms stay cheap
      on = std::max(on, simulatorTimerEventsPerSecond(kind, &profiler, kOps));
    }
    table.emit({kScheduleNames[k], off / 1e6, on / 1e6, off / on});
  }
  table.note("1024 self-rescheduling timers through the full Simulator, 2M events per cell.");
  table.note("Best of 5 interleaved repetitions per side.");
  table.note("Machine-dependent: compare the on_cost column, not absolute rates.");
  table.write();
}

// ---------------------------------------------------------------------------
// BENCH_sim.json: the same three schedules through the REAL Simulator (so
// daemon accounting, clock advance and the wheel all run), one sweep run
// per schedule. events_per_second lands in the machine-readable summary,
// which tools/perf_ratchet.py gates against the committed baseline. A
// fourth run repeats the mixed schedule with the profiler attached so the
// instrumented regime has its own ratcheted baseline too.

void runTimerCell(sim::SweepCell& cell, ScheduleKind kind, bool profiled = false) {
  scenario::Scenario s;
  if (profiled) s.simulator.setProfiler(&s.profiler);
  constexpr int kCellTimers = 1024;
  constexpr std::int64_t kCellEvents = 1'000'000;
  struct Fleet {
    scenario::Scenario& s;
    sim::Rng rng{23};
    std::vector<std::int64_t> period;
    std::int64_t fired = 0;

    void arm(int i) {
      const std::int64_t p = period[static_cast<std::size_t>(i)];
      const std::int64_t delta = p > 0 ? p : 1 + static_cast<std::int64_t>(rng.below(1000));
      s.simulator.schedule(sim::Duration::nanoseconds(delta), [this, i] {
        if (++fired < kCellEvents) arm(i);
      });
    }
  } fleet{s, sim::Rng{23}, std::vector<std::int64_t>(kCellTimers), 0};
  for (int i = 0; i < kCellTimers; ++i) {
    const bool periodic =
        kind == ScheduleKind::kPeriodic || (kind == ScheduleKind::kMixed && i % 2 == 0);
    fleet.period[static_cast<std::size_t>(i)] =
        periodic ? 10'000 + (static_cast<std::int64_t>(i) * 37'000) % 990'000 : 0;
    fleet.arm(i);
  }
  s.simulator.run();
  scenario::finishCell(s, cell);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  emitSchedulePairTable();
  emitProfilerPairTable();

  sim::SweepRunner sweep;
  for (int k = 0; k < 3; ++k) {
    sweep.run<int>(
        1,
        [k](sim::SweepCell& cell) {
          runTimerCell(cell, static_cast<ScheduleKind>(k));
          return 0;
        },
        std::string{"timers_"} + kScheduleNames[k]);
  }
  sweep.run<int>(
      1,
      [](sim::SweepCell& cell) {
        runTimerCell(cell, ScheduleKind::kMixed, /*profiled=*/true);
        return 0;
      },
      "timers_mixed_profiled");
  bench::writeSweepReport(sweep, "micro_simulator");
  return 0;
}
