// Section 6.3: NOAA reforecast retrieval from NERSC — legacy firewalled
// FTP path vs the Science DMZ DTN path with Globus-style transfers.
#include "../bench/bench_util.hpp"
#include "usecase/noaa.hpp"

using namespace scidmz;

int main() {
  bench::header("usecase_noaa_transfer: NERSC -> NOAA reforecast retrieval",
                "Section 6.3, Dart et al. SC13");

  const auto r = usecase::runNoaa();
  bench::row("%-28s %-14s %-20s", "path", "rate_MBps", "239.5GB batch time");
  bench::row("%-28s %-14.2f %s", "firewalled FTP (legacy)", r.legacyMBps,
             r.legacyMBps > 0 ? "weeks (extrapolated)" : "n/a");
  bench::row("%-28s %-14.1f %.1f minutes", "science DMZ DTN + Globus", r.dmzMBps,
             r.dmzBatchTime.toSeconds() / 60.0);
  bench::row("%s", "");
  bench::row("speedup: %.0fx    (paper: 1-2 MB/s -> ~395 MB/s, \"nearly 200 times\",", r.speedup());
  bench::row("273 files / 239.5 GB \"in just over 10 minutes\")");

  bench::JsonTable table("usecase_noaa_transfer", "NERSC -> NOAA reforecast retrieval",
                         "Section 6.3, Dart et al. SC13",
                         {"path", "rate_MBps", "batch_minutes"});
  table.addRow({"firewalled FTP (legacy)", r.legacyMBps, "weeks (extrapolated)"});
  table.addRow({"science DMZ DTN + Globus", r.dmzMBps, r.dmzBatchTime.toSeconds() / 60.0});
  table.addNote(bench::formatRow(
      "speedup: %.0fx (paper: 1-2 MB/s -> ~395 MB/s, nearly 200 times)", r.speedup()));
  table.write();
  return 0;
}
