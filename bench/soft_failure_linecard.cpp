// Section 2's anecdote, quantified: a 10G router line card drops 1 of
// every 22,000 packets — a local throughput loss of well under 1 Mbps —
// yet end-to-end TCP collapses, and the damage grows with latency. We
// print the device-local view (what an SNMP counter would have to notice)
// against the end-to-end view at several RTTs.
#include "../bench/bench_util.hpp"
#include "tcp/mathis.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

struct Cell {
  double cleanMbps = 0;
  double brokenMbps = 0;
  double localLossMbps = 0;
};

Cell measure(int rttMs) {
  Cell cell;
  for (const bool broken : {false, true}) {
    Scenario s;
    auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& r = s.topo.addRouter("line-card-router");
    auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams wan;
    wan.rate = 10_Gbps;
    wan.delay = sim::Duration::microseconds(rttMs * 250);
    wan.mtu = 9000_B;
    s.topo.connect(a, r, wan);
    auto& badLink = s.topo.connect(r, b, wan);
    if (broken) badLink.setLossModel(0, std::make_unique<net::PeriodicLoss>(22000));
    s.topo.computeRoutes();

    tcp::TcpConfig cfg;
    cfg.algorithm = tcp::CcAlgorithm::kHtcp;
    cfg.sndBuf = 256_MB;
    cfg.rcvBuf = 256_MB;
    SteadyFlow flow{s, a, b, cfg};
    const double mbps = flow.measure(5_s, 20_s).toMbps();
    if (broken) {
      cell.brokenMbps = mbps;
      // The device-local view: bits actually dropped per second.
      const auto& stats = badLink.stats(0);
      const double lostBits = static_cast<double>(stats.lost) * 9000.0 * 8.0;
      cell.localLossMbps = lostBits / 25.0 / 1e6;  // over the 25s run
    } else {
      cell.cleanMbps = mbps;
    }
  }
  return cell;
}

}  // namespace

int main() {
  bench::header("soft_failure_linecard: 1/22000 loss, local vs end-to-end damage",
                "Section 2 failing-line-card anecdote, Dart et al. SC13");

  bench::row("%-8s %-14s %-16s %-20s %-12s", "rtt_ms", "clean_mbps", "with_card_mbps",
             "local_drop_mbps", "collapse");
  for (const int rtt : {2, 10, 40, 80}) {
    const auto cell = measure(rtt);
    bench::row("%-8d %-14.1f %-16.1f %-20.3f %.0fx", rtt, cell.cleanMbps, cell.brokenMbps,
               cell.localLossMbps, cell.cleanMbps / std::max(cell.brokenMbps, 1.0));
  }
  bench::row("%s", "");
  bench::row("paper's point: the card itself loses <1 Mbps of traffic, invisible to");
  bench::row("error counters, while end-to-end TCP loses orders of magnitude more;");
  bench::row("only active measurement (owamp) sees it. (cf. bench/fig2_dashboard_mesh)");
  return 0;
}
