// Section 2's anecdote, quantified: a 10G router line card drops 1 of
// every 22,000 packets — a local throughput loss of well under 1 Mbps —
// yet end-to-end TCP collapses, and the damage grows with latency. We
// print the device-local view (what an SNMP counter would have to notice)
// against the end-to-end view at several RTTs.
//
// The second section is the telemetry-era ending to the same story: rerun
// the broken path with the instrumentation layer enabled and localize the
// lossy hop from recorded probes alone — no packet captures, no manual
// link-by-link bisection. The flight-recorder trace and the telemetry
// snapshot are written as artifacts (soft_failure_linecard.trace.jsonl,
// soft_failure_linecard.telemetry.json) for the CI schema check.
#include <cstdlib>
#include <fstream>

#include "../bench/bench_util.hpp"
#include "telemetry/diagnosis.hpp"
#include "tcp/mathis.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

struct Cell {
  double cleanMbps = 0;
  double brokenMbps = 0;
  double localLossMbps = 0;
};

tcp::TcpConfig flowConfig() {
  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = 256_MB;
  cfg.rcvBuf = 256_MB;
  return cfg;
}

/// a --10G--> line-card-router --10G--> b, the broken direction optionally
/// dropping 1 in 22000 packets toward b.
net::Link& buildPath(Scenario& s, int rttMs, bool broken) {
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& r = s.topo.addRouter("line-card-router");
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams wan;
  wan.rate = 10_Gbps;
  wan.delay = sim::Duration::microseconds(rttMs * 250);
  wan.mtu = 9000_B;
  s.topo.connect(a, r, wan);
  auto& badLink = s.topo.connect(r, b, wan);
  if (broken) badLink.setLossModel(0, std::make_unique<net::PeriodicLoss>(22000));
  s.topo.computeRoutes();
  return badLink;
}

net::Host& hostAt(Scenario& s, net::Address address) { return *s.topo.findHost(address); }

Cell measure(int rttMs) {
  Cell cell;
  for (const bool broken : {false, true}) {
    Scenario s;
    auto& badLink = buildPath(s, rttMs, broken);
    SteadyFlow flow{s, hostAt(s, net::Address(10, 0, 0, 1)), hostAt(s, net::Address(10, 0, 0, 2)),
                    flowConfig()};
    const double mbps = flow.measure(5_s, 20_s).toMbps();
    if (broken) {
      cell.brokenMbps = mbps;
      // The device-local view: bits actually dropped per second.
      const auto& stats = badLink.stats(0);
      const double lostBits = static_cast<double>(stats.lost) * 9000.0 * 8.0;
      cell.localLossMbps = lostBits / 25.0 / 1e6;  // over the 25s run
    } else {
      cell.cleanMbps = mbps;
    }
  }
  return cell;
}

/// Rerun the broken 40 ms path with telemetry armed and name the failing
/// hop from the recorded counters alone.
void diagnoseFromTelemetry() {
  Scenario s;
  s.ctx.telemetry().enable();
  buildPath(s, /*rttMs=*/40, /*broken=*/true);
  SteadyFlow flow{s, hostAt(s, net::Address(10, 0, 0, 1)), hostAt(s, net::Address(10, 0, 0, 2)),
                  flowConfig()};
  const double brokenMbps = flow.measure(5_s, 20_s).toMbps();

  const auto snapshot = s.ctx.telemetry().snapshot();
  const auto diagnosis = telemetry::localizeLoss(snapshot);

  bench::row("%s", "");
  bench::row("telemetry diagnosis (40 ms RTT, broken path at %.1f Mbps, probes only):",
             brokenMbps);
  bench::row("  %-44s %s", "loss/drop counter", "count");
  for (const auto& suspect : diagnosis.suspects) {
    bench::row("  %-44s %llu", suspect.point.c_str(),
               static_cast<unsigned long long>(suspect.count));
  }
  if (const auto* culprit = diagnosis.culprit()) {
    bench::row("  => failing hop: %s", culprit->point.c_str());
  } else {
    bench::row("  => no loss recorded (unexpected on the broken path)");
  }
  for (const auto& series : snapshot.series) {
    // The sender's cwnd probe corroborates the diagnosis: sawtooth collapse.
    if (series.name.size() > 11 &&
        series.name.compare(series.name.size() - 11, 11, "/cwnd_bytes") == 0 &&
        series.sampleCount > 0 && series.max > series.min) {
      bench::row("  sender cwnd over the run: min %.0f B, max %.0f B (%zu samples)", series.min,
                 series.max, series.sampleCount);
      break;
    }
  }

  // Artifacts for CI: the packet-level trace (scidmz.trace.v1 JSONL) and
  // the summary snapshot (scidmz.telemetry.v1). SCIDMZ_TRACE_JSONL
  // overrides the trace path; set it empty to skip the files.
  const char* env = std::getenv("SCIDMZ_TRACE_JSONL");
  const std::string tracePath = env != nullptr ? env : "soft_failure_linecard.trace.jsonl";
  if (!tracePath.empty()) {
    if (!s.ctx.telemetry().writeTrace(tracePath)) {
      std::fprintf(stderr, "[telemetry] could not write %s\n", tracePath.c_str());
    }
    std::ofstream snap("soft_failure_linecard.telemetry.json", std::ios::binary);
    if (snap) snap << snapshot.toJson() << "\n";
  }
}

}  // namespace

int main() {
  bench::header("soft_failure_linecard: 1/22000 loss, local vs end-to-end damage",
                "Section 2 failing-line-card anecdote, Dart et al. SC13");

  bench::JsonTable table(
      "soft_failure_linecard", "1/22000 loss, local vs end-to-end damage",
      "Section 2 failing-line-card anecdote, Dart et al. SC13",
      {"rtt_ms", "clean_mbps", "with_card_mbps", "local_drop_mbps", "collapse_factor"});

  bench::row("%-8s %-14s %-16s %-20s %-12s", "rtt_ms", "clean_mbps", "with_card_mbps",
             "local_drop_mbps", "collapse");
  for (const int rtt : {2, 10, 40, 80}) {
    const auto cell = measure(rtt);
    const double collapse = cell.cleanMbps / std::max(cell.brokenMbps, 1.0);
    bench::row("%-8d %-14.1f %-16.1f %-20.3f %.0fx", rtt, cell.cleanMbps, cell.brokenMbps,
               cell.localLossMbps, collapse);
    table.addRow({rtt, cell.cleanMbps, cell.brokenMbps, cell.localLossMbps, collapse});
  }
  bench::row("%s", "");
  bench::row("paper's point: the card itself loses <1 Mbps of traffic, invisible to");
  bench::row("error counters, while end-to-end TCP loses orders of magnitude more;");
  bench::row("only active measurement (owamp) sees it. (cf. bench/fig2_dashboard_mesh)");
  table.addNote("the card itself loses <1 Mbps of traffic, invisible to error counters,"
                " while end-to-end TCP loses orders of magnitude more");
  table.write();

  diagnoseFromTelemetry();
  return 0;
}
