// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run soft_failure_linecard`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("soft_failure_linecard"); }
