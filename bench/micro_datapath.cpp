// Per-packet data-path microbenchmarks (google-benchmark): the zero-copy
// refactor's hot paths — pooled packets moving through the ring-buffer
// egress queue and the compiled FIB with its flow cache — measured against
// verbatim copies of the seed implementations (std::deque<Packet> queue
// with by-value packets, stable-sorted linear route scan), so one binary
// prints before/after items-per-second for each pair. Compare the
// items_per_second counters of each Legacy/current pair; BM_DatapathHop vs
// BM_LegacyDatapathHop is the headline packets/sec ratio for the
// forwarding hot path.
//
// After the microbenchmarks, main() runs a fixed end-to-end forwarding
// workload (probe bursts through switch chains of increasing length) under
// the SweepRunner, so BENCH_sim.json gains packets_forwarded /
// packets_per_second entries CI can track run over run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "net/device.hpp"
#include "net/host.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "net/topology.hpp"
#include "scenario/bench_io.hpp"
#include "scenario/harness.hpp"
#include "sim/sweep.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

/// The seed-era egress queue, verbatim: std::deque of whole packets,
/// ~150-byte moves on both enqueue and dequeue.
class LegacyDropTailQueue {
 public:
  explicit LegacyDropTailQueue(sim::DataSize capacityBytes) : capacity_(capacityBytes) {}

  bool tryEnqueue(sim::SimTime now, net::Packet packet) {
    const auto size = packet.wireSize();
    if (depth_ + size > capacity_) {
      ++dropped_;
      return false;
    }
    depth_ += size;
    depthOverTime_.update(now, static_cast<double>(depth_.byteCount()));
    items_.push_back(std::move(packet));
    return true;
  }

  [[nodiscard]] std::optional<net::Packet> dequeue(sim::SimTime now) {
    if (items_.empty()) return std::nullopt;
    net::Packet p = std::move(items_.front());
    items_.pop_front();
    depth_ -= p.wireSize();
    depthOverTime_.update(now, static_cast<double>(depth_.byteCount()));
    return p;
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  sim::DataSize capacity_;
  sim::DataSize depth_ = sim::DataSize::zero();
  std::deque<net::Packet> items_;
  sim::TimeWeightedMean depthOverTime_;
  std::uint64_t dropped_ = 0;
};

/// The seed-era route table, verbatim: routes stable-sorted by descending
/// prefix length, every lookup a linear prefix-containment scan.
class LegacyRouteTable {
 public:
  void addRoute(net::Prefix prefix, int ifIndex) {
    routes_.push_back(Entry{prefix, ifIndex});
    std::stable_sort(routes_.begin(), routes_.end(), [](const Entry& a, const Entry& b) {
      return a.prefix.length() > b.prefix.length();
    });
  }

  [[nodiscard]] std::optional<int> lookupRoute(net::Address dst) const {
    for (const auto& entry : routes_) {
      if (entry.prefix.contains(dst)) return entry.ifIndex;
    }
    return std::nullopt;
  }

 private:
  struct Entry {
    net::Prefix prefix;
    int ifIndex;
  };
  std::vector<Entry> routes_;
};

net::FlowKey benchFlow(net::Address dst) {
  return net::FlowKey{net::Address(10, 0, 0, 250), dst, 33000, 5001, net::Protocol::kTcp};
}

net::Packet legacyPacket(net::Address dst) {
  net::Packet p;
  p.flow = benchFlow(dst);
  p.body = net::TcpHeader{};
  p.payload = sim::DataSize::bytes(1460);
  return p;
}

net::PacketRef pooledPacket(net::PacketPool& pool, net::Address dst) {
  net::PacketRef p = pool.acquire();
  p->flow = benchFlow(dst);
  p->body = net::TcpHeader{};
  p->payload = sim::DataSize::bytes(1460);
  return p;
}

/// A realistic mid-size RIB: a rack of /32 host routes over a handful of
/// aggregate prefixes, as computeRoutes() installs for the usecase sites.
template <typename Table>
void installBenchRoutes(Table& table) {
  for (int i = 1; i <= 48; ++i) {
    table.addRoute(net::Prefix{net::Address(10, 0, 0, static_cast<std::uint8_t>(i)), 32}, i % 8);
  }
  table.addRoute(net::Prefix{net::Address(10, 1, 0, 0), 16}, 1);
  table.addRoute(net::Prefix{net::Address(10, 2, 0, 0), 16}, 2);
  table.addRoute(net::Prefix{net::Address(172, 16, 0, 0), 12}, 3);
  table.addRoute(net::Prefix{net::Address(10, 0, 0, 0), 8}, 0);
}

/// Sixteen concurrently active flows — the regime the flow cache targets.
net::Address activeDst(int i) {
  return net::Address(10, 0, 0, static_cast<std::uint8_t>(1 + (i & 15)));
}

/// Minimal concrete Device: routing state only, no forwarding behavior.
class FibDevice : public net::Device {
 public:
  using net::Device::Device;
  void receive(net::PacketRef, net::Interface&) override {}
};

// ---------------------------------------------------------------------------
// Egress queue churn: 64 packets in, 64 packets out, per iteration.

void BM_QueueChurn(benchmark::State& state) {
  net::PacketPool pool;
  net::DropTailQueue q{1_MB};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)q.tryEnqueue(sim::SimTime::zero(), pooledPacket(pool, activeDst(i)));
    }
    while (!q.empty()) {
      auto p = q.dequeue(sim::SimTime::zero());
      benchmark::DoNotOptimize(p->ttl);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueueChurn);

void BM_LegacyQueueChurn(benchmark::State& state) {
  LegacyDropTailQueue q{1_MB};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)q.tryEnqueue(sim::SimTime::zero(), legacyPacket(activeDst(i)));
    }
    while (!q.empty()) {
      auto p = q.dequeue(sim::SimTime::zero());
      benchmark::DoNotOptimize(p->ttl);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LegacyQueueChurn);

// ---------------------------------------------------------------------------
// Route lookup: 64 lookups across 16 hot flows against the bench RIB.

void BM_FibLookup(benchmark::State& state) {
  scenario::Scenario s;
  FibDevice dev{s.ctx, "fib"};
  installBenchRoutes(dev);
  dev.finalizeRoutes();
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto egress = dev.lookupRoute(activeDst(i));
      benchmark::DoNotOptimize(egress);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FibLookup);

void BM_LegacyRouteLookup(benchmark::State& state) {
  LegacyRouteTable table;
  installBenchRoutes(table);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto egress = table.lookupRoute(activeDst(i));
      benchmark::DoNotOptimize(egress);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LegacyRouteLookup);

// ---------------------------------------------------------------------------
// Composite per-hop path, the headline pair: build a packet, take the
// egress queue in and out, and resolve the route — everything a switch hop
// does to a packet except the event-queue trip (micro_simulator covers
// that side).

void BM_DatapathHop(benchmark::State& state) {
  scenario::Scenario s;
  net::PacketPool pool;
  net::DropTailQueue q{1_MB};
  FibDevice dev{s.ctx, "hop"};
  installBenchRoutes(dev);
  dev.finalizeRoutes();
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)q.tryEnqueue(sim::SimTime::zero(), pooledPacket(pool, activeDst(i)));
      auto p = q.dequeue(sim::SimTime::zero());
      auto egress = dev.lookupRoute(p->flow.dst);
      benchmark::DoNotOptimize(egress);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DatapathHop);

void BM_LegacyDatapathHop(benchmark::State& state) {
  LegacyDropTailQueue q{1_MB};
  LegacyRouteTable table;
  installBenchRoutes(table);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)q.tryEnqueue(sim::SimTime::zero(), legacyPacket(activeDst(i)));
      auto p = q.dequeue(sim::SimTime::zero());
      auto egress = table.lookupRoute(p->flow.dst);
      benchmark::DoNotOptimize(egress);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LegacyDatapathHop);

// ---------------------------------------------------------------------------
// End-to-end: probe bursts through the real simulator stack (host ->
// four-switch chain -> host). No legacy twin — this is the absolute
// packets/sec of the assembled data path, tracked run over run.

void BM_DatapathForwardChain(benchmark::State& state) {
  scenario::Scenario s;
  auto& src = s.topo.addHost("src", net::Address(10, 0, 0, 1));
  auto& dst = s.topo.addHost("dst", net::Address(10, 0, 0, 2));
  net::SwitchDevice* prev = nullptr;
  net::LinkParams lp;
  lp.rate = 100_Gbps;
  for (int i = 0; i < 4; ++i) {
    auto& sw = s.topo.addSwitch("sw" + std::to_string(i));
    if (prev == nullptr) {
      s.topo.connect(src, sw, lp);
    } else {
      s.topo.connect(*prev, sw, lp);
    }
    prev = &sw;
  }
  s.topo.connect(*prev, dst, lp);
  s.topo.computeRoutes();

  const std::uint64_t before = s.ctx.packetsForwarded();
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      src.send(net::makeProbePacket(s.ctx.pool(), net::FlowKey{src.address(), dst.address(), 9, 9,
                                                               net::Protocol::kUdp},
                                    net::ProbeHeader{}, sim::DataSize::bytes(1460)));
    }
    s.simulator.run();
  }
  // Items are forwarding-plane hops actually executed (4 per packet).
  state.SetItemsProcessed(static_cast<std::int64_t>(s.ctx.packetsForwarded() - before));
}
BENCHMARK(BM_DatapathForwardChain);

// ---------------------------------------------------------------------------
// BENCH_sim.json: a fixed forwarding workload per chain length under the
// sweep runner, so packets_forwarded / packets_per_second land in the
// machine-readable summary.

constexpr int kChainLengths[] = {1, 2, 4, 8};
constexpr int kBursts = 64;
constexpr int kBurstPackets = 64;

void runChainCell(sim::SweepCell& cell) {
  const int hops = kChainLengths[cell.index];
  scenario::Scenario s;
  auto& src = s.topo.addHost("src", net::Address(10, 0, 0, 1));
  auto& dst = s.topo.addHost("dst", net::Address(10, 0, 0, 2));
  net::SwitchDevice* prev = nullptr;
  net::LinkParams lp;
  lp.rate = 100_Gbps;
  for (int i = 0; i < hops; ++i) {
    auto& sw = s.topo.addSwitch("sw" + std::to_string(i));
    if (prev == nullptr) {
      s.topo.connect(src, sw, lp);
    } else {
      s.topo.connect(*prev, sw, lp);
    }
    prev = &sw;
  }
  s.topo.connect(*prev, dst, lp);
  s.topo.computeRoutes();

  for (int burst = 0; burst < kBursts; ++burst) {
    for (int i = 0; i < kBurstPackets; ++i) {
      src.send(net::makeProbePacket(s.ctx.pool(), net::FlowKey{src.address(), dst.address(), 9, 9,
                                                               net::Protocol::kUdp},
                                    net::ProbeHeader{}, sim::DataSize::bytes(1460)));
    }
    s.simulator.run();
  }
  scenario::finishCell(s, cell);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  sim::SweepRunner sweep;
  sweep.run<int>(
      std::size(kChainLengths),
      [](sim::SweepCell& cell) {
        runChainCell(cell);
        return 0;
      },
      "datapath_chain");
  bench::writeSweepReport(sweep, "micro_datapath");
  return 0;
}
