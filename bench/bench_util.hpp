// Shared helpers for the figure/table reproduction benches: scenario
// bootstrap, steady-state TCP measurement, aligned table printing, and the
// sweep-report plumbing (stderr summary + BENCH_sim.json).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "tcp/connection.hpp"

namespace scidmz::bench {

struct Scenario {
  sim::Simulator simulator;
  sim::Rng rng{20130101};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
};

inline void header(const char* title, const char* paperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("================================================================\n");
}

inline std::string vformatRow(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

/// printf into a std::string — for cells that run off the main thread and
/// must defer their output until the sweep completes.
inline std::string formatRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vformatRow(fmt, args);
  va_end(args);
  return out;
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Table cell for a measured rate: "%.1f" when the flow established, the
/// "n/e" (never established) marker otherwise — a silent 0.0 looks like a
/// collapsed-but-working flow, which is a different failure.
inline std::string mbpsCell(double mbps, bool established) {
  return established ? formatRow("%.1f", mbps) : std::string{"n/e"};
}

/// Print each sweep run's parallel stats to stderr (stdout must stay
/// byte-identical to a serial run) and write the BENCH_sim.json wall-clock
/// summary. SCIDMZ_BENCH_JSON overrides the output path; set it empty to
/// disable the file.
inline void writeSweepReport(const sim::SweepRunner& sweep, const char* benchName) {
  for (const auto& run : sweep.history()) {
    const double speedup = run.wallSeconds > 0 ? run.cellSecondsSum() / run.wallSeconds : 0.0;
    std::fprintf(stderr,
                 "[sweep] %s/%s: %zu cells on %d worker%s, %.2fs wall "
                 "(%.2fs serial-equivalent, %.2fx), %llu events\n",
                 benchName, run.name.c_str(), run.cells.size(), run.workers,
                 run.workers == 1 ? "" : "s", run.wallSeconds,
                 run.cellSecondsSum(), speedup,
                 static_cast<unsigned long long>(run.totalEvents()));
  }
  const char* env = std::getenv("SCIDMZ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_sim.json";
  if (path.empty()) return;
  if (!sweep.writeJson(benchName, path)) {
    std::fprintf(stderr, "[sweep] could not write %s\n", path.c_str());
  }
}

/// Steady-state goodput of one bulk TCP flow between two hosts: start an
/// effectively infinite transfer, discard `warmup`, measure `window`.
struct SteadyFlow {
  SteadyFlow(Scenario& s, net::Host& src, net::Host& dst, tcp::TcpConfig config,
             std::uint16_t port = 5001)
      : scenario(s) {
    listener = std::make_unique<tcp::TcpListener>(dst, port, config);
    listener->onAccept = [this](tcp::TcpConnection& c) { server = &c; };
    client = std::make_unique<tcp::TcpConnection>(src, dst.address(), port, config);
    client->onEstablished = [this] { client->sendData(sim::DataSize::terabytes(100)); };
    client->start();
  }

  /// Receiver-side goodput over `window` after discarding `warmup`. The
  /// connection is pinned at the start of the window: if the listener has
  /// not accepted by then the measurement is meaningless, so this returns
  /// zero and flips established() false rather than silently measuring a
  /// flow that only appeared (or never appeared) mid-window off a zero base.
  [[nodiscard]] sim::DataRate measure(sim::Duration warmup, sim::Duration window) {
    scenario.simulator.runFor(warmup);
    tcp::TcpConnection* measured = server;
    established_ = measured != nullptr;
    const auto base = measured != nullptr ? measured->deliveredBytes() : sim::DataSize::zero();
    scenario.simulator.runFor(window);
    if (measured == nullptr) return sim::DataRate::zero();
    const auto delta = measured->deliveredBytes() - base;
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(delta.bitCount()) / window.toSeconds()));
  }

  /// False when the flow had not established by the start of the last
  /// measure() window — surface as "n/e" in bench tables via mbpsCell().
  [[nodiscard]] bool established() const { return established_; }

  Scenario& scenario;
  std::unique_ptr<tcp::TcpListener> listener;
  std::unique_ptr<tcp::TcpConnection> client;
  tcp::TcpConnection* server = nullptr;
  bool established_ = true;
};

}  // namespace scidmz::bench
