// Shared helpers for the figure/table reproduction benches: scenario
// bootstrap, steady-state TCP measurement, aligned table printing, the
// sweep-report plumbing (stderr summary + BENCH_sim.json), and the
// machine-readable table emitter (scidmz.bench.table.v1 JSON next to every
// ASCII table, consumed by CI).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "tcp/connection.hpp"

namespace scidmz::bench {

struct Scenario {
  sim::Simulator simulator;
  sim::Rng rng{20130101};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
};

inline void header(const char* title, const char* paperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("================================================================\n");
}

inline std::string vformatRow(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

/// printf into a std::string — for cells that run off the main thread and
/// must defer their output until the sweep completes.
inline std::string formatRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vformatRow(fmt, args);
  va_end(args);
  return out;
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Table cell for a measured rate: "%.1f" when the flow established, the
/// "n/e" (never established) marker otherwise — a silent 0.0 looks like a
/// collapsed-but-working flow, which is a different failure.
inline std::string mbpsCell(double mbps, bool established) {
  return established ? formatRow("%.1f", mbps) : std::string{"n/e"};
}

/// Standard end-of-cell bookkeeping: record events executed and, when the
/// scenario instrumented itself (SCIDMZ_TELEMETRY=1 or an explicit
/// enable()), attach the telemetry snapshot so writeSweepReport() merges it
/// into the cell's BENCH_sim.json entry.
inline void finishCell(Scenario& s, sim::SweepCell& cell) {
  cell.eventsExecuted = s.simulator.eventsExecuted();
  if (s.ctx.telemetry().enabled()) {
    cell.telemetryJson = s.ctx.telemetry().snapshot().toJson();
  }
}

/// Print each sweep run's parallel stats to stderr (stdout must stay
/// byte-identical to a serial run) and write the BENCH_sim.json wall-clock
/// summary. SCIDMZ_BENCH_JSON overrides the output path; set it empty to
/// disable the file.
inline void writeSweepReport(const sim::SweepRunner& sweep, const char* benchName) {
  for (const auto& run : sweep.history()) {
    const double speedup = run.wallSeconds > 0 ? run.cellSecondsSum() / run.wallSeconds : 0.0;
    std::fprintf(stderr,
                 "[sweep] %s/%s: %zu cells on %d worker%s, %.2fs wall "
                 "(%.2fs serial-equivalent, %.2fx), %llu events\n",
                 benchName, run.name.c_str(), run.cells.size(), run.workers,
                 run.workers == 1 ? "" : "s", run.wallSeconds,
                 run.cellSecondsSum(), speedup,
                 static_cast<unsigned long long>(run.totalEvents()));
  }
  const char* env = std::getenv("SCIDMZ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_sim.json";
  if (path.empty()) return;
  if (!sweep.writeJson(benchName, path)) {
    std::fprintf(stderr, "[sweep] could not write %s\n", path.c_str());
  }
}

/// A cell of a machine-readable bench table: number or string.
struct JsonValue {
  enum class Kind { kNumber, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;

  JsonValue(double v) : number(v) {}                        // NOLINT(google-explicit-constructor)
  JsonValue(int v) : number(v) {}                           // NOLINT(google-explicit-constructor)
  JsonValue(long long v)                                    // NOLINT(google-explicit-constructor)
      : number(static_cast<double>(v)) {}
  JsonValue(unsigned long long v)                           // NOLINT(google-explicit-constructor)
      : number(static_cast<double>(v)) {}
  JsonValue(const char* v) : kind(Kind::kString), text(v) {}  // NOLINT
  JsonValue(std::string v)                                  // NOLINT(google-explicit-constructor)
      : kind(Kind::kString), text(std::move(v)) {}

  void appendTo(std::string& out) const {
    if (kind == Kind::kNumber) {
      char buf[40];
      // %.10g keeps integers exact (up to 2^33) and floats readable while
      // staying byte-deterministic for identical inputs.
      std::snprintf(buf, sizeof buf, "%.10g", number);
      out += buf;
      return;
    }
    out.push_back('"');
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
  }
};

/// Machine-readable mirror of a bench's ASCII table (one schema for every
/// figure/use-case bench, consumed by CI). Rows are appended alongside the
/// printed rows; write() drops `<bench>.table.json` next to the binary's
/// working directory. SCIDMZ_TABLE_JSON_DIR redirects the output directory;
/// set it to the empty string to disable the file entirely.
class JsonTable {
 public:
  JsonTable(std::string bench, std::string title, std::string paperRef,
            std::vector<std::string> columns)
      : bench_(std::move(bench)),
        title_(std::move(title)),
        paper_ref_(std::move(paperRef)),
        columns_(std::move(columns)) {}

  JsonTable& addRow(std::vector<JsonValue> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Free-form notes (the explanatory lines under the ASCII table).
  JsonTable& addNote(std::string note) {
    notes_.push_back(std::move(note));
    return *this;
  }

  [[nodiscard]] std::string toJson() const {
    std::string out;
    out.reserve(256 + rows_.size() * 64);
    out += "{\"schema\":\"scidmz.bench.table.v1\",\"bench\":";
    JsonValue(bench_).appendTo(out);
    out += ",\"title\":";
    JsonValue(title_).appendTo(out);
    out += ",\"paper_ref\":";
    JsonValue(paper_ref_).appendTo(out);
    out += ",\"columns\":[";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) out += ',';
      JsonValue(columns_[i]).appendTo(out);
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r) out += ',';
      out += '[';
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c) out += ',';
        rows_[r][c].appendTo(out);
      }
      out += ']';
    }
    out += "],\"notes\":[";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i) out += ',';
      JsonValue(notes_[i]).appendTo(out);
    }
    out += "]}\n";
    return out;
  }

  bool writeTo(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << toJson();
    return static_cast<bool>(out);
  }

  /// Write to $SCIDMZ_TABLE_JSON_DIR/<bench>.table.json (default ".").
  /// Returns true when written or intentionally disabled.
  bool write() const {
    const char* env = std::getenv("SCIDMZ_TABLE_JSON_DIR");
    std::string dir = env != nullptr ? env : ".";
    if (env != nullptr && dir.empty()) return true;  // explicitly disabled
    const std::string path = dir + "/" + bench_ + ".table.json";
    if (!writeTo(path)) {
      std::fprintf(stderr, "[table] could not write %s\n", path.c_str());
      return false;
    }
    return true;
  }

 private:
  std::string bench_;
  std::string title_;
  std::string paper_ref_;
  std::vector<std::string> columns_;
  std::vector<std::vector<JsonValue>> rows_;
  std::vector<std::string> notes_;
};

/// Steady-state goodput of one bulk TCP flow between two hosts: start an
/// effectively infinite transfer, discard `warmup`, measure `window`.
struct SteadyFlow {
  SteadyFlow(Scenario& s, net::Host& src, net::Host& dst, tcp::TcpConfig config,
             std::uint16_t port = 5001)
      : scenario(s) {
    listener = std::make_unique<tcp::TcpListener>(dst, port, config);
    listener->onAccept = [this](tcp::TcpConnection& c) { server = &c; };
    client = std::make_unique<tcp::TcpConnection>(src, dst.address(), port, config);
    client->onEstablished = [this] { client->sendData(sim::DataSize::terabytes(100)); };
    client->start();
  }

  /// Receiver-side goodput over `window` after discarding `warmup`. The
  /// connection is pinned at the start of the window: if the listener has
  /// not accepted by then the measurement is meaningless, so this returns
  /// zero and flips established() false rather than silently measuring a
  /// flow that only appeared (or never appeared) mid-window off a zero base.
  [[nodiscard]] sim::DataRate measure(sim::Duration warmup, sim::Duration window) {
    scenario.simulator.runFor(warmup);
    tcp::TcpConnection* measured = server;
    established_ = measured != nullptr;
    const auto base = measured != nullptr ? measured->deliveredBytes() : sim::DataSize::zero();
    scenario.simulator.runFor(window);
    if (measured == nullptr) return sim::DataRate::zero();
    const auto delta = measured->deliveredBytes() - base;
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(delta.bitCount()) / window.toSeconds()));
  }

  /// False when the flow had not established by the start of the last
  /// measure() window — surface as "n/e" in bench tables via mbpsCell().
  [[nodiscard]] bool established() const { return established_; }

  Scenario& scenario;
  std::unique_ptr<tcp::TcpListener> listener;
  std::unique_ptr<tcp::TcpConnection> client;
  tcp::TcpConnection* server = nullptr;
  bool established_ = true;
};

}  // namespace scidmz::bench
