// Shared helpers for the figure/table reproduction benches: scenario
// bootstrap, steady-state TCP measurement, and aligned table printing.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>

#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"

namespace scidmz::bench {

struct Scenario {
  sim::Simulator simulator;
  sim::Rng rng{20130101};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
};

inline void header(const char* title, const char* paperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Steady-state goodput of one bulk TCP flow between two hosts: start an
/// effectively infinite transfer, discard `warmup`, measure `window`.
struct SteadyFlow {
  SteadyFlow(Scenario& s, net::Host& src, net::Host& dst, tcp::TcpConfig config,
             std::uint16_t port = 5001)
      : scenario(s) {
    listener = std::make_unique<tcp::TcpListener>(dst, port, config);
    listener->onAccept = [this](tcp::TcpConnection& c) { server = &c; };
    client = std::make_unique<tcp::TcpConnection>(src, dst.address(), port, config);
    client->onEstablished = [this] { client->sendData(sim::DataSize::terabytes(100)); };
    client->start();
  }

  /// Receiver-side goodput over `window` after discarding `warmup`.
  [[nodiscard]] sim::DataRate measure(sim::Duration warmup, sim::Duration window) {
    scenario.simulator.runFor(warmup);
    const auto base = server != nullptr ? server->deliveredBytes() : sim::DataSize::zero();
    scenario.simulator.runFor(window);
    if (server == nullptr) return sim::DataRate::zero();
    const auto delta = server->deliveredBytes() - base;
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(delta.bitCount()) / window.toSeconds()));
  }

  Scenario& scenario;
  std::unique_ptr<tcp::TcpListener> listener;
  std::unique_ptr<tcp::TcpConnection> client;
  tcp::TcpConnection* server = nullptr;
};

}  // namespace scidmz::bench
