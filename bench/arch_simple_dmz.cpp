// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run arch_simple_dmz`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("arch_simple_dmz"); }
