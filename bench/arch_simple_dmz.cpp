// Figure 3: the simple Science DMZ reference design vs the general-purpose
// campus baseline. For both architectures: the validator's verdict, the
// analytic path assessment, and a measured DTN transfer.
#include "../bench/bench_util.hpp"
#include "core/report.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_node.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

struct Outcome {
  std::size_t criticalFindings = 0;
  bool crossesFirewall = false;
  double predictedMbps = 0;
  double measuredMbps = 0;
};

Outcome evaluate(bool dmz) {
  Scenario s;
  core::SiteConfig config;
  if (!dmz) {
    config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
    config.remoteProfile = dtn::DtnProfile::untunedGeneralPurpose();
  }
  auto site = dmz ? core::buildSimpleScienceDmz(s.topo, config)
                  : core::buildGeneralPurposeCampus(s.topo, config);

  Outcome out;
  out.criticalFindings = core::validate(*site).criticalCount();

  core::PathAssumptions assumptions;
  assumptions.endpoint = site->primaryDtn()->profile().tcp;
  assumptions.windowScalingBroken = !dmz;  // the firewall strips RFC1323
  const auto assessment = core::assessPath(s.topo, site->remoteDtn->host().address(),
                                           site->primaryDtn()->host().address(), assumptions);
  if (assessment) {
    out.crossesFirewall = assessment->crossesFirewall;
    out.predictedMbps = assessment->expectedThroughput.toMbps();
  }

  dtn::DtnTransfer transfer{*site->remoteDtn, *site->primaryDtn(), "sample.dat",
                            dmz ? 2_GB : 100_MB, 50000};
  transfer.start();
  s.simulator.runFor(3600_s);
  if (transfer.finished()) out.measuredMbps = transfer.result().averageRate.toMbps();
  return out;
}

}  // namespace

int main() {
  bench::header("arch_simple_dmz: Figure 3 design vs general-purpose campus",
                "Figure 3 + Section 4.1, Dart et al. SC13");

  const auto baseline = evaluate(false);
  const auto dmz = evaluate(true);

  bench::JsonTable table(
      "arch_simple_dmz", "Figure 3 design vs general-purpose campus",
      "Figure 3 + Section 4.1, Dart et al. SC13",
      {"architecture", "criticals", "firewall", "predicted_mbps", "measured_mbps"});

  bench::row("%-26s %-10s %-10s %-16s %-14s", "architecture", "criticals", "firewall",
             "predicted_mbps", "measured_mbps");
  bench::row("%-26s %-10zu %-10s %-16.1f %-14.1f", "general-purpose campus",
             baseline.criticalFindings, baseline.crossesFirewall ? "on-path" : "off-path",
             baseline.predictedMbps, baseline.measuredMbps);
  bench::row("%-26s %-10zu %-10s %-16.1f %-14.1f", "simple science dmz", dmz.criticalFindings,
             dmz.crossesFirewall ? "on-path" : "off-path", dmz.predictedMbps, dmz.measuredMbps);
  table.addRow({"general-purpose campus",
                static_cast<unsigned long long>(baseline.criticalFindings),
                baseline.crossesFirewall ? "on-path" : "off-path", baseline.predictedMbps,
                baseline.measuredMbps});
  table.addRow({"simple science dmz", static_cast<unsigned long long>(dmz.criticalFindings),
                dmz.crossesFirewall ? "on-path" : "off-path", dmz.predictedMbps,
                dmz.measuredMbps});
  bench::row("%s", "");
  bench::row("improvement: %.0fx measured (validator predicted the loser: %zu vs %zu criticals)",
             dmz.measuredMbps / std::max(baseline.measuredMbps, 0.001),
             baseline.criticalFindings, dmz.criticalFindings);
  table.addNote(bench::formatRow(
      "improvement: %.0fx measured (validator predicted the loser: %zu vs %zu criticals)",
      dmz.measuredMbps / std::max(baseline.measuredMbps, 0.001), baseline.criticalFindings,
      dmz.criticalFindings));
  table.write();
  return 0;
}
