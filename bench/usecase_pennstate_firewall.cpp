// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run usecase_pennstate_firewall`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("usecase_pennstate_firewall"); }
