// Section 6.2 / Figure 8: Penn State CoE / VTTI firewall incident. The
// firewall's TCP flow sequence checking strips RFC 1323 window scaling,
// pinning windows at 64 KB; disabling it multiplies throughput. We print
// the before/after table plus a Figure 8-style utilization time series
// (sampled link utilization around the change).
#include <memory>
#include <vector>

#include "../bench/bench_util.hpp"
#include "usecase/pennstate.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

/// Figure 8 style: sample CoE-edge utilization while flows run, with the
/// firewall feature disabled mid-run.
void utilizationTimeSeries(bench::JsonTable& utilTable) {
  Scenario s;
  auto& vtti = s.topo.addHost("vtti", net::Address(198, 82, 0, 1));
  auto profile = net::FirewallProfile::enterprise10G();
  profile.tcpSequenceChecking = true;
  auto& fw = s.topo.addFirewall("coe-fw", profile);
  auto& server = s.topo.addHost("coe-server", net::Address(10, 30, 1, 1));
  net::LinkParams outside;
  outside.rate = 1_Gbps;
  outside.delay = 5_ms;
  s.topo.connect(vtti, fw, outside);
  net::LinkParams inside;
  inside.rate = 1_Gbps;
  inside.delay = 10_us;
  s.topo.connect(fw, server, inside);
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kCubic;
  cfg.sndBuf = 64_MB;
  cfg.rcvBuf = 64_MB;

  // Long-lived inbound flow; a fresh connection every 30s (transfers were
  // ongoing; new connections pick up the fixed behaviour after the change).
  std::vector<std::unique_ptr<tcp::TcpListener>> listeners;
  std::vector<std::unique_ptr<tcp::TcpConnection>> clients;
  auto launchFlow = [&](std::uint16_t port) {
    auto listener = std::make_unique<tcp::TcpListener>(server, port, cfg);
    auto client = std::make_unique<tcp::TcpConnection>(vtti, server.address(), port, cfg);
    auto* raw = client.get();
    client->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
    client->start();
    listeners.push_back(std::move(listener));
    clients.push_back(std::move(client));
  };

  launchFlow(5001);
  bench::row("%s", "");
  bench::row("figure-8-style SNMP series (edge utilization, 10s samples):");
  bench::row("%-8s %-12s %-10s", "t_sec", "util_mbps", "note");

  auto sampleDelivered = [&clients]() {
    sim::DataSize total = sim::DataSize::zero();
    for (const auto& c : clients) total += c->stats().bytesAcked;
    return total;
  };

  sim::DataSize last = sim::DataSize::zero();
  for (int t = 10; t <= 120; t += 10) {
    if (t == 60) {
      fw.setTcpSequenceChecking(false);
      // Ongoing connections keep their broken negotiation; users restart
      // their transfers (new connections) as word of the fix spreads.
      launchFlow(5002);
    }
    s.simulator.runFor(10_s);
    const auto now = sampleDelivered();
    const double mbps = static_cast<double>((now - last).bitCount()) / 10.0 / 1e6;
    last = now;
    bench::row("%-8d %-12.1f %-10s", t, mbps,
               t == 60 ? "<- sequence checking disabled" : "");
    utilTable.addRow({t, mbps, t == 60 ? "sequence checking disabled" : ""});
  }
}

}  // namespace

int main() {
  bench::header("usecase_pennstate_firewall: window scaling stripped by the firewall",
                "Section 6.2 + Figure 8 + Equation 2, Dart et al. SC13");

  usecase::PennStateConfig config;
  bench::row("equation 2: required window = %s (paper: 1.25 MB, ~20x the 64KB default)",
             sim::toString(usecase::requiredWindow(config)).c_str());

  bench::JsonTable table(
      "usecase_pennstate_firewall", "window scaling stripped by the firewall",
      "Section 6.2 + Figure 8 + Equation 2, Dart et al. SC13",
      {"direction", "sequence_checking", "mbps", "peak_window_bytes"});

  const auto r = usecase::runPennState(config);
  bench::row("%s", "");
  bench::row("%-12s %-22s %-14s %-18s", "direction", "sequence_checking", "mbps",
             "peak_window_bytes");
  bench::row("%-12s %-22s %-14.1f %-18llu", "inbound", "on (before)", r.inboundBefore.mbps,
             static_cast<unsigned long long>(r.inboundBefore.peakWindowBytes));
  bench::row("%-12s %-22s %-14.1f %-18llu", "outbound", "on (before)", r.outboundBefore.mbps,
             static_cast<unsigned long long>(r.outboundBefore.peakWindowBytes));
  bench::row("%-12s %-22s %-14.1f %-18llu", "inbound", "off (after)", r.inboundAfter.mbps,
             static_cast<unsigned long long>(r.inboundAfter.peakWindowBytes));
  bench::row("%-12s %-22s %-14.1f %-18llu", "outbound", "off (after)", r.outboundAfter.mbps,
             static_cast<unsigned long long>(r.outboundAfter.peakWindowBytes));
  table.addRow({"inbound", "on (before)", r.inboundBefore.mbps,
                static_cast<unsigned long long>(r.inboundBefore.peakWindowBytes)});
  table.addRow({"outbound", "on (before)", r.outboundBefore.mbps,
                static_cast<unsigned long long>(r.outboundBefore.peakWindowBytes)});
  table.addRow({"inbound", "off (after)", r.inboundAfter.mbps,
                static_cast<unsigned long long>(r.inboundAfter.peakWindowBytes)});
  table.addRow({"outbound", "off (after)", r.outboundAfter.mbps,
                static_cast<unsigned long long>(r.outboundAfter.peakWindowBytes)});
  bench::row("%s", "");
  bench::row("speedup: inbound %.1fx, outbound %.1fx (paper: ~5x inbound, ~12x outbound",
             r.inboundSpeedup(), r.outboundSpeedup());
  bench::row("from a lower outbound baseline; our symmetric model improves both alike)");
  table.addNote(bench::formatRow("speedup: inbound %.1fx, outbound %.1fx (paper: ~5x inbound,"
                                 " ~12x outbound from a lower outbound baseline)",
                                 r.inboundSpeedup(), r.outboundSpeedup()));
  table.write();

  bench::JsonTable utilTable("usecase_pennstate_firewall_util",
                             "figure-8-style SNMP series (edge utilization, 10s samples)",
                             "Figure 8, Dart et al. SC13", {"t_sec", "util_mbps", "note"});
  utilizationTimeSeries(utilTable);
  utilTable.write();
  return 0;
}
