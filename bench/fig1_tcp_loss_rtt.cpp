// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run fig1_tcp_loss_rtt`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("fig1_tcp_loss_rtt"); }
