// Figure 1: TCP throughput vs round-trip time under packet loss, between
// 10 Gbps hosts with 9000-byte MTUs. For each (RTT, loss) cell we print
// the Mathis-equation prediction and the measured steady-state goodput of
// simulated TCP-Reno and TCP-Hamilton (H-TCP) — the three curve families
// of the paper's figure. The loss-free row is the figure's topmost line.
//
// Expected shape: loss-free flat near 10 Gbps at every RTT; lossy curves
// fall as 1/RTT and 1/sqrt(p); H-TCP sits above Reno at high BDP.
//
// The grid's cells are independent scenarios, so they run on the parallel
// sweep runner (SCIDMZ_SWEEP_THREADS workers); the table is printed from
// submission-ordered results and is byte-identical to a serial run.
#include <algorithm>
#include <cmath>
#include <vector>

#include "../bench/bench_util.hpp"
#include "tcp/mathis.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

struct CellSpec {
  int rttMs = 0;
  double loss = 0;
  tcp::CcAlgorithm algo = tcp::CcAlgorithm::kReno;
};

struct CellResult {
  double mbps = 0;
  bool established = true;
};

double rtt_msToSeconds(int rttMs) { return static_cast<double>(rttMs) * 1e-3; }

CellResult measureCell(const CellSpec& spec, sim::SweepCell& cell) {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams link;
  link.rate = 10_Gbps;
  link.delay = sim::Duration::microseconds(spec.rttMs * 500);
  link.mtu = 9000_B;
  auto& wire = s.topo.connect(a, b, link);
  if (spec.loss > 0) {
    wire.setLossModel(0, std::make_unique<net::RandomLoss>(spec.loss, s.rng.fork(1)));
  }
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = spec.algo;
  cfg.sndBuf = 256_MB;  // above the 125 MB BDP of the 100ms cell
  cfg.rcvBuf = 256_MB;
  SteadyFlow flow{s, a, b, cfg};
  // Measurement horizon scaled to the congestion-avoidance sawtooth: one
  // cycle lasts ~(W/2) RTTs with W ~ 1.6/sqrt(p) segments; we want several
  // cycles, bounded so the whole grid stays minutes, not hours. Low-loss
  // high-RTT cells remain biased above Mathis for exactly the reason real
  // 10G test campaigns struggle there: equilibrium takes minutes to reach.
  double windowSecs = 10.0;
  if (spec.loss > 0) {
    const double rttSecs = rtt_msToSeconds(spec.rttMs);
    windowSecs = std::clamp(8.2 * rttSecs / std::sqrt(spec.loss), 15.0, 90.0);
  }
  const auto warmup = sim::Duration::fromSeconds(std::clamp(windowSecs / 3.0, 5.0, 20.0));
  CellResult result;
  result.mbps = flow.measure(warmup, sim::Duration::fromSeconds(windowSecs)).toMbps();
  result.established = flow.established();
  bench::finishCell(s, cell);
  return result;
}

}  // namespace

int main() {
  bench::header("fig1_tcp_loss_rtt: throughput vs RTT under loss (10G hosts, 9K MTU)",
                "Figure 1 + Section 2.1 (Mathis equation), Dart et al. SC13");

  const std::vector<int> rtts{1, 10, 20, 50, 100};
  const std::vector<double> losses{0.0, 1e-5, 1.0 / 22000.0, 2e-4, 1e-3};

  // One sweep cell per (loss, rtt, algorithm), in table order.
  std::vector<CellSpec> specs;
  for (const double loss : losses) {
    for (const int rtt : rtts) {
      specs.push_back(CellSpec{rtt, loss, tcp::CcAlgorithm::kReno});
      specs.push_back(CellSpec{rtt, loss, tcp::CcAlgorithm::kHtcp});
    }
  }
  sim::SweepRunner sweep;
  const auto results = sweep.run<CellResult>(
      specs.size(), [&specs](sim::SweepCell& cell) { return measureCell(specs[cell.index], cell); },
      "grid");

  bench::JsonTable table("fig1_tcp_loss_rtt",
                         "throughput vs RTT under loss (10G hosts, 9K MTU)",
                         "Figure 1 + Section 2.1 (Mathis equation), Dart et al. SC13",
                         {"rtt_ms", "loss", "mathis_mbps", "reno_mbps", "htcp_mbps"});

  bench::row("%-10s %-12s %-14s %-14s %-14s", "rtt_ms", "loss", "mathis_mbps", "reno_mbps",
             "htcp_mbps");
  std::size_t next = 0;
  for (const double loss : losses) {
    for (const int rtt : rtts) {
      const auto predicted =
          loss > 0 ? tcp::mathisThroughput(8960_B, sim::Duration::milliseconds(rtt), loss)
                   : 10_Gbps;
      const double capped = std::min(predicted.toMbps(), (10_Gbps).toMbps());
      const CellResult reno = results[next++];
      const CellResult htcp = results[next++];
      bench::row("%-10d %-12.2e %-14.1f %-14s %-14s", rtt, loss, capped,
                 bench::mbpsCell(reno.mbps, reno.established).c_str(),
                 bench::mbpsCell(htcp.mbps, htcp.established).c_str());
      table.addRow({rtt, loss, capped, bench::mbpsCell(reno.mbps, reno.established),
                    bench::mbpsCell(htcp.mbps, htcp.established)});
    }
    bench::row("%s", "");
  }

  bench::row("shape checks:");
  bench::row("  - loss-free row flat near 10000 Mbps at all RTTs");
  bench::row("  - each lossy family falls ~1/RTT; families drop ~1/sqrt(loss)");
  bench::row("  - htcp >= reno at high RTT x loss (the paper's measured gap)");
  table.addNote("loss-free row flat near 10000 Mbps at all RTTs");
  table.addNote("each lossy family falls ~1/RTT; families drop ~1/sqrt(loss)");
  table.addNote("htcp >= reno at high RTT x loss (the paper's measured gap)");
  table.write();
  bench::writeSweepReport(sweep, "fig1_tcp_loss_rtt");
  return 0;
}
