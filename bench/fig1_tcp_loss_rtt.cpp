// Figure 1: TCP throughput vs round-trip time under packet loss, between
// 10 Gbps hosts with 9000-byte MTUs. For each (RTT, loss) cell we print
// the Mathis-equation prediction and the measured steady-state goodput of
// simulated TCP-Reno and TCP-Hamilton (H-TCP) — the three curve families
// of the paper's figure. The loss-free row is the figure's topmost line.
//
// Expected shape: loss-free flat near 10 Gbps at every RTT; lossy curves
// fall as 1/RTT and 1/sqrt(p); H-TCP sits above Reno at high BDP.
#include <algorithm>
#include <cmath>
#include <vector>

#include "../bench/bench_util.hpp"
#include "tcp/mathis.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

double rtt_msToSeconds(int rttMs) { return static_cast<double>(rttMs) * 1e-3; }

double measureCell(int rttMs, double loss, tcp::CcAlgorithm algo) {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams link;
  link.rate = 10_Gbps;
  link.delay = sim::Duration::microseconds(rttMs * 500);
  link.mtu = 9000_B;
  auto& wire = s.topo.connect(a, b, link);
  if (loss > 0) {
    wire.setLossModel(0, std::make_unique<net::RandomLoss>(loss, s.rng.fork(1)));
  }
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = algo;
  cfg.sndBuf = 256_MB;  // above the 125 MB BDP of the 100ms cell
  cfg.rcvBuf = 256_MB;
  SteadyFlow flow{s, a, b, cfg};
  // Measurement horizon scaled to the congestion-avoidance sawtooth: one
  // cycle lasts ~(W/2) RTTs with W ~ 1.6/sqrt(p) segments; we want several
  // cycles, bounded so the whole grid stays minutes, not hours. Low-loss
  // high-RTT cells remain biased above Mathis for exactly the reason real
  // 10G test campaigns struggle there: equilibrium takes minutes to reach.
  double windowSecs = 10.0;
  if (loss > 0) {
    const double rttSecs = rtt_msToSeconds(rttMs);
    windowSecs = std::clamp(8.2 * rttSecs / std::sqrt(loss), 15.0, 90.0);
  }
  const auto warmup = sim::Duration::fromSeconds(std::clamp(windowSecs / 3.0, 5.0, 20.0));
  return flow.measure(warmup, sim::Duration::fromSeconds(windowSecs)).toMbps();
}

}  // namespace

int main() {
  bench::header("fig1_tcp_loss_rtt: throughput vs RTT under loss (10G hosts, 9K MTU)",
                "Figure 1 + Section 2.1 (Mathis equation), Dart et al. SC13");

  const std::vector<int> rtts{1, 10, 20, 50, 100};
  const std::vector<double> losses{0.0, 1e-5, 1.0 / 22000.0, 2e-4, 1e-3};

  bench::row("%-10s %-12s %-14s %-14s %-14s", "rtt_ms", "loss", "mathis_mbps", "reno_mbps",
             "htcp_mbps");
  for (const double loss : losses) {
    for (const int rtt : rtts) {
      const auto predicted =
          loss > 0 ? tcp::mathisThroughput(8960_B, sim::Duration::milliseconds(rtt), loss)
                   : 10_Gbps;
      const double capped = std::min(predicted.toMbps(), (10_Gbps).toMbps());
      const double reno = measureCell(rtt, loss, tcp::CcAlgorithm::kReno);
      const double htcp = measureCell(rtt, loss, tcp::CcAlgorithm::kHtcp);
      bench::row("%-10d %-12.2e %-14.1f %-14.1f %-14.1f", rtt, loss, capped, reno, htcp);
    }
    bench::row("%s", "");
  }

  bench::row("shape checks:");
  bench::row("  - loss-free row flat near 10000 Mbps at all RTTs");
  bench::row("  - each lossy family falls ~1/RTT; families drop ~1/sqrt(loss)");
  bench::row("  - htcp >= reno at high RTT x loss (the paper's measured gap)");
  return 0;
}
