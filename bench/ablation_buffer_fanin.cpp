// Section 5 ablation: egress buffering vs fan-in. N senders on fast ports
// converge on one slower egress port; we sweep the switch's per-port
// buffer and report loss and aggregate goodput. Deep buffers absorb the
// coincident bursts; cheap-switch buffers drop them and TCP collapses.
// The senders x buffer grid runs as parallel sweep cells.
#include <memory>
#include <vector>

#include "../bench/bench_util.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

struct Outcome {
  double aggregateMbps = 0;
  double dropPct = 0;
};

Outcome run(int senders, sim::DataSize buffer, sim::SweepCell& cell) {
  Scenario s;
  auto profile = net::SwitchProfile::scienceDmz();
  profile.egressBuffer = buffer;
  auto& sw = s.topo.addSwitch("agg", profile);
  auto& sink = s.topo.addHost("sink", net::Address(10, 0, 0, 99));
  net::LinkParams out;
  out.rate = 10_Gbps;
  out.delay = 5_ms;  // the WAN continues beyond the aggregation point
  out.mtu = 9000_B;
  s.topo.connect(sw, sink, out);

  std::vector<net::Host*> hosts;
  net::LinkParams in;
  in.rate = 10_Gbps;  // senders are as fast as the shared egress: classic fan-in
  in.delay = 20_us;
  in.mtu = 9000_B;
  for (int i = 0; i < senders; ++i) {
    auto& h = s.topo.addHost("h" + std::to_string(i),
                             net::Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(h, sw, in);
    hosts.push_back(&h);
  }
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kCubic;
  cfg.sndBuf = 16_MB;
  cfg.rcvBuf = 16_MB;

  std::vector<std::unique_ptr<tcp::TcpListener>> listeners;
  std::vector<std::unique_ptr<tcp::TcpConnection>> clients;
  std::vector<tcp::TcpConnection*> servers(hosts.size(), nullptr);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const auto port = static_cast<std::uint16_t>(6000 + i);
    auto listener = std::make_unique<tcp::TcpListener>(sink, port, cfg);
    listener->onAccept = [&servers, i](tcp::TcpConnection& c) { servers[i] = &c; };
    auto client = std::make_unique<tcp::TcpConnection>(*hosts[i], sink.address(), port, cfg);
    auto* raw = client.get();
    client->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
    client->start();
    listeners.push_back(std::move(listener));
    clients.push_back(std::move(client));
  }

  s.simulator.runFor(3_s);
  sim::DataSize base = sim::DataSize::zero();
  for (auto* srv : servers) {
    if (srv != nullptr) base += srv->deliveredBytes();
  }
  s.simulator.runFor(6_s);
  sim::DataSize now = sim::DataSize::zero();
  for (auto* srv : servers) {
    if (srv != nullptr) now += srv->deliveredBytes();
  }

  Outcome o;
  o.aggregateMbps = static_cast<double>((now - base).bitCount()) / 6.0 / 1e6;
  // Drops on the congested egress port (interface 0 = toward the sink).
  const auto& q = sw.interface(0).queue().stats();
  o.dropPct = q.dropFraction() * 100.0;
  bench::finishCell(s, cell);
  return o;
}

}  // namespace

int main() {
  bench::header("ablation_buffer_fanin: egress buffer sweep under fan-in",
                "Section 5 (fan-in and buffer sizing), Dart et al. SC13");

  const std::vector<int> senderCounts{2, 4, 8};
  const std::vector<sim::DataSize> buffers{sim::DataSize::kibibytes(128),
                                           sim::DataSize::mebibytes(1), sim::DataSize::mebibytes(8),
                                           sim::DataSize::mebibytes(32)};
  sim::SweepRunner sweep;
  const auto results = sweep.run<Outcome>(
      senderCounts.size() * buffers.size(),
      [&](sim::SweepCell& cell) {
        return run(senderCounts[cell.index / buffers.size()],
                   buffers[cell.index % buffers.size()], cell);
      },
      "fanin_grid");

  bench::JsonTable table("ablation_buffer_fanin", "egress buffer sweep under fan-in",
                         "Section 5 (fan-in and buffer sizing), Dart et al. SC13",
                         {"senders", "egress_buffer", "aggregate_mbps", "drop_pct"});

  bench::row("%-10s %-14s %-18s %-10s", "senders", "egress_buffer", "aggregate_mbps",
             "drop_pct");
  std::size_t next = 0;
  for (const int senders : senderCounts) {
    for (const auto& buffer : buffers) {
      const auto& o = results[next++];
      bench::row("%-10d %-14s %-18.1f %-10.3f", senders, sim::toString(buffer).c_str(),
                 o.aggregateMbps, o.dropPct);
      table.addRow({senders, sim::toString(buffer), o.aggregateMbps, o.dropPct});
    }
    bench::row("%s", "");
  }
  bench::row("shallow buffers shave multiple Gbps off the aggregate as coincident");
  bench::row("bursts drop and flows stall in recovery; science-DMZ-class buffers");
  bench::row("carry the same fan-in at line rate.");
  table.addNote("shallow buffers shave multiple Gbps off the aggregate as coincident bursts"
                " drop and flows stall in recovery; science-DMZ-class buffers carry the same"
                " fan-in at line rate");
  table.write();
  bench::writeSweepReport(sweep, "ablation_buffer_fanin");
  return 0;
}
