// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run sdn_policy_comparison`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("sdn_policy_comparison"); }
