// Section 7.3: SDN security policy for large flows. Three policies for the
// same 10G science flow through an enterprise edge:
//   always-firewall     — every packet through the inspection engines,
//   ids-then-bypass     — OpenFlow controller bypasses vetted flows,
//   acl-only            — Science DMZ style, no firewall at all.
// The three policies are independent scenarios and run as sweep cells.
#include <memory>

#include "../bench/bench_util.hpp"
#include "vc/openflow.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

struct PolicyRow {
  double mbps = 0;
  bool established = true;
  std::uint64_t inspected = 0;
  std::uint64_t drops = 0;
};

PolicyRow run(int mode, sim::SweepCell& cell) {  // 0 = firewall, 1 = ids-bypass, 2 = acl-only
  Scenario s;
  auto& remote = s.topo.addHost("remote", net::Address(198, 128, 1, 1));
  auto& dtn = s.topo.addHost("dtn", net::Address(10, 10, 1, 10));
  net::LinkParams wan;
  wan.rate = 10_Gbps;
  wan.delay = 10_ms;
  wan.mtu = 9000_B;

  net::FirewallDevice* fw = nullptr;
  std::unique_ptr<net::IntrusionDetectionSystem> ids;
  std::unique_ptr<vc::BypassController> controller;
  if (mode == 2) {
    auto& sw = s.topo.addSwitch("dmz-switch");
    s.topo.connect(remote, sw, wan);
    s.topo.connect(sw, dtn, wan);
  } else {
    // Sequence checking off: a bypass installed after the handshake cannot
    // restore window scaling the firewall already stripped from the SYN,
    // so we isolate the data-path (engine/buffer) cost here.
    auto profile = net::FirewallProfile::enterprise10G();
    profile.tcpSequenceChecking = false;
    fw = &s.topo.addFirewall("edge-fw", profile);
    s.topo.connect(remote, *fw, wan);
    s.topo.connect(*fw, dtn, wan);
    if (mode == 1) {
      ids = std::make_unique<net::IntrusionDetectionSystem>();
      ids->setVettingPacketCount(5);
      controller = std::make_unique<vc::BypassController>(*fw, *ids);
    }
  }
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = 128_MB;
  cfg.rcvBuf = 128_MB;
  SteadyFlow flow{s, remote, dtn, cfg};
  PolicyRow row;
  row.mbps = flow.measure(5_s, 15_s).toMbps();
  row.established = flow.established();
  if (fw != nullptr) {
    row.inspected = fw->firewallStats().inspected;
    row.drops = fw->firewallStats().dropsInputBuffer;
  }
  bench::finishCell(s, cell);
  return row;
}

}  // namespace

int main() {
  bench::header("sdn_policy_comparison: security policy vs science-flow throughput",
                "Section 7.3 (OpenFlow IDS-then-bypass), Dart et al. SC13");

  const char* names[] = {"always-firewall", "ids-then-bypass (sdn)", "acl-only (science dmz)"};
  sim::SweepRunner sweep;
  const auto results = sweep.run<PolicyRow>(
      3, [](sim::SweepCell& cell) { return run(static_cast<int>(cell.index), cell); },
      "policies");

  bench::JsonTable table("sdn_policy_comparison",
                         "security policy vs science-flow throughput",
                         "Section 7.3 (OpenFlow IDS-then-bypass), Dart et al. SC13",
                         {"policy", "mbps", "pkts_inspected", "fw_drops"});

  bench::row("%-26s %-12s %-18s %-14s", "policy", "mbps", "pkts_inspected", "fw_drops");
  for (int mode = 0; mode < 3; ++mode) {
    const auto& row = results[static_cast<std::size_t>(mode)];
    bench::row("%-26s %-12s %-18llu %-14llu", names[mode],
               bench::mbpsCell(row.mbps, row.established).c_str(),
               static_cast<unsigned long long>(row.inspected),
               static_cast<unsigned long long>(row.drops));
    table.addRow({names[mode], bench::mbpsCell(row.mbps, row.established),
                  static_cast<unsigned long long>(row.inspected),
                  static_cast<unsigned long long>(row.drops)});
  }
  bench::row("%s", "");
  bench::row("the SDN policy recovers (nearly) the ACL-only rate while still passing");
  bench::row("connection setup through the IDS — the paper's proposed middle ground.");
  table.addNote("the SDN policy recovers (nearly) the ACL-only rate while still passing"
                " connection setup through the IDS — the paper's proposed middle ground");
  table.write();
  bench::writeSweepReport(sweep, "sdn_policy_comparison");
  return 0;
}
