// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run ablation_parallel_streams`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("ablation_parallel_streams"); }
