// Section 3.2 ablation: why DTN tooling (GridFTP/FDT) uses parallel
// streams and jumbo frames. Aggregate goodput of an N-stream transfer over
// a lossy high-BDP path, for N in {1..16} and MTU in {1500, 9000}.
// The streams x MTU grid runs as parallel sweep cells.
#include <memory>
#include <vector>

#include "../bench/bench_util.hpp"
#include "apps/parallel_transfer.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

double run(int streams, sim::DataSize mtu, sim::SweepCell& cell) {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams link;
  link.rate = 10_Gbps;
  link.delay = 25_ms;  // 50ms RTT: a coast-to-coast science path
  link.mtu = mtu;
  auto& wire = s.topo.connect(a, b, link);
  wire.setLossModel(0, std::make_unique<net::RandomLoss>(1e-4, s.rng.fork(4)));
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kReno;  // the worst case streams rescue
  cfg.sndBuf = 32_MB;
  cfg.rcvBuf = 32_MB;
  apps::ParallelTransfer transfer{a, b, 2811, 400_MB, streams, cfg};
  transfer.start();
  s.simulator.runFor(1200_s);
  bench::finishCell(s, cell);
  if (!transfer.finished()) return 0.0;
  return static_cast<double>((400_MB).bitCount()) / transfer.elapsed().toSeconds() / 1e6;
}

}  // namespace

int main() {
  bench::header("ablation_parallel_streams: streams x MTU on a lossy 50ms path",
                "Section 3.2 (DTN tooling) + Section 2.1 (MSS in Eq. 1), Dart et al. SC13");

  const std::vector<int> streamCounts{1, 2, 4, 8, 16};
  // Cells in table order: (1500 MTU, 9000 MTU) per stream count.
  sim::SweepRunner sweep;
  const auto results = sweep.run<double>(
      streamCounts.size() * 2,
      [&streamCounts](sim::SweepCell& cell) {
        return run(streamCounts[cell.index / 2], cell.index % 2 == 0 ? 1500_B : 9000_B, cell);
      },
      "streams_grid");

  bench::JsonTable table(
      "ablation_parallel_streams", "streams x MTU on a lossy 50ms path",
      "Section 3.2 (DTN tooling) + Section 2.1 (MSS in Eq. 1), Dart et al. SC13",
      {"streams", "mbps_mtu1500", "mbps_mtu9000"});

  bench::row("%-10s %-16s %-16s", "streams", "mbps_mtu1500", "mbps_mtu9000");
  for (std::size_t i = 0; i < streamCounts.size(); ++i) {
    bench::row("%-10d %-16.1f %-16.1f", streamCounts[i], results[i * 2], results[i * 2 + 1]);
    table.addRow({streamCounts[i], results[i * 2], results[i * 2 + 1]});
  }
  bench::row("%s", "");
  bench::row("both knobs act through the Mathis equation: N streams multiply the");
  bench::row("aggregate window N-fold; jumbo frames multiply MSS (and thus the");
  bench::row("loss-limited rate) 6-fold. DTN defaults combine the two.");
  table.addNote("both knobs act through the Mathis equation: N streams multiply the aggregate"
                " window N-fold; jumbo frames multiply MSS (and thus the loss-limited rate)"
                " 6-fold");
  table.write();
  bench::writeSweepReport(sweep, "ablation_parallel_streams");
  return 0;
}
