// Equation 2: bandwidth-delay-product window sizing, analytically and
// validated by simulation. For each (rate, RTT): the required window, the
// throughput with the 64 KB default, and with properly-sized buffers.
#include "../bench/bench_util.hpp"
#include "tcp/mathis.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

double measure(sim::DataRate rate, sim::Duration rtt, sim::DataSize buffers) {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams link;
  link.rate = rate;
  link.delay = sim::Duration::nanoseconds(rtt.ns() / 2);
  link.mtu = 1500_B;
  s.topo.connect(a, b, link);
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kCubic;
  cfg.sndBuf = buffers;
  cfg.rcvBuf = buffers;
  SteadyFlow flow{s, a, b, cfg};
  return flow.measure(3_s, 5_s).toMbps();
}

}  // namespace

int main() {
  bench::header("eqn2_window_sizing: BDP window requirement, analytic + simulated",
                "Equation 2 + Section 6.2, Dart et al. SC13");

  struct Case {
    sim::DataRate rate;
    sim::Duration rtt;
  };
  const Case cases[] = {
      {100_Mbps, 10_ms}, {1_Gbps, 10_ms}, {1_Gbps, 50_ms}, {10_Gbps, 10_ms}, {10_Gbps, 100_ms}};

  bench::JsonTable table(
      "eqn2_window_sizing", "BDP window requirement, analytic + simulated",
      "Equation 2 + Section 6.2, Dart et al. SC13",
      {"rate", "rtt_ms", "required_window_bytes", "mbps_64KB_buf", "mbps_tuned_buf"});

  bench::row("%-12s %-8s %-16s %-18s %-18s", "rate", "rtt_ms", "required_window",
             "mbps_64KB_buf", "mbps_tuned_buf");
  for (const auto& c : cases) {
    const auto window = tcp::bandwidthDelayWindow(c.rate, c.rtt);
    const auto tuned = sim::DataSize::bytes(window.byteCount() * 3);
    const double small = measure(c.rate, c.rtt, 64_KiB);
    const double big = measure(c.rate, c.rtt, tuned);
    bench::row("%-12s %-8.0f %-16s %-18.1f %-18.1f", sim::toString(c.rate).c_str(),
               c.rtt.toMillis(), sim::toString(window).c_str(), small, big);
    table.addRow({sim::toString(c.rate), c.rtt.toMillis(),
                  static_cast<unsigned long long>(window.byteCount()), small, big});
  }
  bench::row("%s", "");
  bench::row("paper example: 1 Gbps x 10 ms needs %s; the 64KB default is ~20x too small,",
             sim::toString(tcp::bandwidthDelayWindow(1_Gbps, 10_ms)).c_str());
  bench::row("capping throughput near 50 Mbps regardless of link speed.");
  table.addNote(bench::formatRow(
      "paper example: 1 Gbps x 10 ms needs %s; the 64KB default is ~20x too small, capping"
      " throughput near 50 Mbps regardless of link speed",
      sim::toString(tcp::bandwidthDelayWindow(1_Gbps, 10_ms)).c_str()));
  table.write();
  return 0;
}
