// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run eqn2_window_sizing`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("eqn2_window_sizing"); }
