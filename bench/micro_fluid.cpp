// Fluid flow-engine microbenchmarks: the hybrid-fidelity headline numbers.
//
// The fluid model's pitch (DESIGN.md "Hybrid-fidelity flow engine") is that
// an analytic flow costs O(path length) arithmetic per 10 ms tick instead of
// thousands of packet events per second, so background load that would be
// unaffordable at packet fidelity — the paper's "everything else on the
// network" — becomes a rounding error. This bench pins that claim down:
//
//   - google-benchmark micros for the per-flow costs (creation + path
//     trace, and a 1024-flow simulated second);
//   - two SweepRunner cells under identical topology and per-flow volume —
//     100k fluid flows vs 512 packet flows, 8 MB each — whose
//     flows_created / flows_per_second land in BENCH_micro_fluid.json and
//     are ratcheted by CI. The headline ratio (fluid flows/s over packet
//     flows/s) prints at the end; the acceptance bar is >= 50x.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/host.hpp"
#include "net/topology.hpp"
#include "scenario/bench_io.hpp"
#include "scenario/harness.hpp"
#include "sim/sweep.hpp"
#include "tcp/connection.hpp"
#include "tcp/fluid.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

/// Shared fat path: the DTN pair every flow crosses. 400 Gbps so the link,
/// not the engine, is the contended resource; 2 ms RTT keeps establishment
/// quick; jumbo MTU matches the Science DMZ configuration.
void buildFatPath(scenario::Scenario& s, net::Host** src, net::Host** dst) {
  *src = &s.topo.addHost("src", net::Address(10, 0, 0, 1));
  *dst = &s.topo.addHost("dst", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 400_Gbps;
  lp.delay = 1_ms;
  lp.mtu = 9000_B;
  s.topo.connect(**src, **dst, lp);
  s.topo.computeRoutes();
}

net::FlowPtr makeFlow(scenario::Scenario& s, net::Host& src, net::Host& dst,
                      const tcp::TcpConfig& cfg, net::FlowFidelity fidelity, int index) {
  net::FlowFactory::Options options;
  options.port = static_cast<std::uint16_t>(1024 + (index & 0x7fff));
  options.fidelity = fidelity;
  return net::flowFactory(s.ctx).create(src, dst, cfg, options);
}

// ---------------------------------------------------------------------------
// Per-flow creation cost: factory dispatch + path trace + engine slot.

void BM_FluidFlowCreate(benchmark::State& state) {
  scenario::Scenario s;
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  buildFatPath(s, &src, &dst);
  const tcp::TcpConfig cfg = tcp::TcpConfig::tunedDtn();
  int index = 0;
  for (auto _ : state) {
    auto flow = makeFlow(s, *src, *dst, cfg, net::FlowFidelity::kFluid, index++);
    benchmark::DoNotOptimize(flow.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FluidFlowCreate);

// ---------------------------------------------------------------------------
// Engine tick cost at scale: 1024 concurrently active fluid flows advanced
// through one simulated second (100 ticks).

void BM_FluidSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    scenario::Scenario s;
    net::Host* src = nullptr;
    net::Host* dst = nullptr;
    buildFatPath(s, &src, &dst);
    const tcp::TcpConfig cfg = tcp::TcpConfig::tunedDtn();
    std::vector<net::FlowPtr> flows;
    flows.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      auto flow = makeFlow(s, *src, *dst, cfg, net::FlowFidelity::kFluid, i);
      auto* raw = flow.get();
      flow->onEstablished = [raw] { raw->sendData(10_GB); };
      flow->start();
      flows.push_back(std::move(flow));
    }
    s.simulator.runFor(1_s);
    benchmark::DoNotOptimize(s.simulator.eventsExecuted());
  }
}
BENCHMARK(BM_FluidSimulatedSecond)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_micro_fluid.json: same workload shape at both fidelities — N flows
// of 8 MB each across the shared fat path, run to completion — so the two
// runs' flows_per_second are directly comparable model throughputs.

constexpr int kFluidFlows = 100000;
constexpr int kPacketFlows = 512;

double runBulkCell(sim::SweepCell& cell, net::FlowFidelity fidelity, int flowCount) {
  scenario::Scenario s;
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  buildFatPath(s, &src, &dst);
  const tcp::TcpConfig cfg = tcp::TcpConfig::tunedDtn();
  std::vector<net::FlowPtr> flows;
  flows.reserve(static_cast<std::size_t>(flowCount));
  int completed = 0;
  for (int i = 0; i < flowCount; ++i) {
    auto flow = makeFlow(s, *src, *dst, cfg, fidelity, i);
    auto* raw = flow.get();
    flow->onEstablished = [raw] { raw->sendData(8_MB); };
    flow->onSendComplete = [&completed] { ++completed; };
    flow->start();
    flows.push_back(std::move(flow));
  }
  s.simulator.run();
  scenario::finishCell(s, cell);
  return completed == flowCount ? 1.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::header("micro_fluid: analytic flow engine vs per-packet TCP",
                "DESIGN.md: hybrid-fidelity flow engine");

  sim::SweepRunner sweep;
  const auto fluidOk = sweep.run<double>(
      1,
      [](sim::SweepCell& cell) {
        return runBulkCell(cell, net::FlowFidelity::kFluid, kFluidFlows);
      },
      "fluid_bulk");
  const auto packetOk = sweep.run<double>(
      1,
      [](sim::SweepCell& cell) {
        return runBulkCell(cell, net::FlowFidelity::kPacket, kPacketFlows);
      },
      "packet_bulk");

  const auto& fluidRun = sweep.history()[0];
  const auto& packetRun = sweep.history()[1];
  const double fluidFps =
      fluidRun.wallSeconds > 0
          ? static_cast<double>(fluidRun.totalFlows()) / fluidRun.wallSeconds
          : 0.0;
  const double packetFps =
      packetRun.wallSeconds > 0
          ? static_cast<double>(packetRun.totalFlows()) / packetRun.wallSeconds
          : 0.0;
  bench::row("fluid:  %d flows x 8 MB, %.2fs wall, %.0f flows/s, all complete: %s",
             kFluidFlows, fluidRun.wallSeconds, fluidFps,
             fluidOk[0] == 1.0 ? "yes" : "NO");
  bench::row("packet: %d flows x 8 MB, %.2fs wall, %.0f flows/s, all complete: %s",
             kPacketFlows, packetRun.wallSeconds, packetFps,
             packetOk[0] == 1.0 ? "yes" : "NO");
  const double ratio = packetFps > 0 ? fluidFps / packetFps : 0.0;
  bench::row("fluid/packet model-throughput ratio: %.0fx (acceptance: >= 50x)", ratio);

  bench::writeSweepReport(sweep, "micro_fluid");
  return fluidOk[0] == 1.0 && packetOk[0] == 1.0 && ratio >= 50.0 ? 0 : 1;
}
