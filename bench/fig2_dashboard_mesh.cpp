// Figure 2: the perfSONAR mesh dashboard. Four sites run continuous OWAMP
// loss probes and round-robin BWCTL throughput tests; one site's uplink
// has the Section 2 failing line card (1 / 22,000 loss). We render the
// dashboard grid — the degraded row/column pattern of the paper's figure —
// then repair the card and render again.
//
// The scenario runs as a single sweep cell (the runner still provides the
// wall-clock/events bookkeeping and BENCH_sim.json output): the cell defers
// its rows into a string list so nothing prints from a worker thread.
#include <memory>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"
#include "perfsonar/alerts.hpp"
#include "perfsonar/dashboard.hpp"
#include "perfsonar/mesh.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

struct MeshResult {
  std::vector<std::string> lines;
  int degradedWithCard = 0;
  int degradedAfterRepair = 0;
  std::size_t alertsRaised = 0;
};

MeshResult runMesh(sim::SweepCell& cell) {
  MeshResult result;
  std::vector<std::string>& out = result.lines;

  Scenario s;
  // Star of four sites around a WAN core; 10G, 10ms spokes.
  auto& core = s.topo.addRouter("esnet-core");
  const char* names[] = {"lbl", "anl", "ornl", "slac"};
  std::vector<perfsonar::MeshSite> sites;
  net::Link* lblUplink = nullptr;
  for (int i = 0; i < 4; ++i) {
    auto& host = s.topo.addHost(std::string{"ps-"} + names[i],
                                net::Address(198, 129, 0, static_cast<std::uint8_t>(i + 1)));
    net::LinkParams spoke;
    spoke.rate = 10_Gbps;
    spoke.delay = 10_ms;
    spoke.mtu = 9000_B;
    auto& link = s.topo.connect(host, core, spoke);
    if (i == 0) lblUplink = &link;
    sites.push_back(perfsonar::MeshSite{names[i], &host});
  }
  s.topo.computeRoutes();

  perfsonar::MeasurementArchive archive;
  perfsonar::MeshRunner::Options options;
  options.lossReportInterval = 10_s;
  // Short tests with idle gaps: enough to rate every one of the 12 ordered
  // pairs while keeping the simulated byte volume (and wall time) modest.
  options.throughputTestGap = 3_s;
  options.throughputTestDuration = 2_s;
  options.owamp.interval = 10_ms;
  perfsonar::MeshRunner mesh{s.ctx, sites, archive, options};

  // Science-path policy: any sustained probe loss is a failure, and a
  // path dropping below 60% of its own baseline is investigated.
  perfsonar::SoftFailureOptions detectorOptions;
  detectorOptions.lossThreshold = 5e-4;
  detectorOptions.throughputDropFraction = 0.6;
  perfsonar::SoftFailureDetector detector{archive, detectorOptions};
  std::size_t alertCount = 0;
  detector.onAlert = [&alertCount, &out](const perfsonar::Alert& a) {
    ++alertCount;
    out.push_back(bench::formatRow("  alert @%s: %s -> %s (%s)", sim::toString(a.at).c_str(),
                                   a.src.c_str(), a.dst.c_str(), a.metric.c_str()));
  };

  // Healthy baseline first (regression detection needs one), then the card
  // starts dropping 1/22000 of everything LBL transmits.
  mesh.start();
  for (int i = 0; i < 8; ++i) {
    s.simulator.runFor(10_s);
    detector.evaluate(s.simulator.now());
  }
  out.push_back("t=80s: lbl's uplink line card begins dropping 1/22000 packets");
  lblUplink->setLossModel(0, std::make_unique<net::RandomLoss>(1.0 / 22000.0, s.rng.fork(2)));
  for (int i = 0; i < 15; ++i) {
    s.simulator.runFor(10_s);
    detector.evaluate(s.simulator.now());
  }

  // 2s tests only reach ~5-7 Gbps through slow start on a clean 40ms-RTT
  // path; rate against that expectation rather than full line rate.
  perfsonar::Dashboard dashboard{archive, mesh.siteNames(), 5000.0};
  out.push_back("");
  out.push_back("dashboard with the failing line card on lbl's uplink:");
  out.push_back(dashboard.render());
  result.degradedWithCard = dashboard.countAtRating(perfsonar::CellRating::kBad) +
                            dashboard.countAtRating(perfsonar::CellRating::kDegraded);
  out.push_back(bench::formatRow("degraded/bad cells: %d (expect the lbl-sourced row impaired)",
                                 result.degradedWithCard));
  out.push_back(bench::formatRow("alerts raised: %zu", alertCount));
  result.alertsRaised = alertCount;

  out.push_back("");
  out.push_back("repairing the line card and re-measuring...");
  lblUplink->repair();
  s.simulator.runFor(120_s);
  out.push_back(dashboard.render());
  result.degradedAfterRepair = dashboard.countAtRating(perfsonar::CellRating::kBad) +
                               dashboard.countAtRating(perfsonar::CellRating::kDegraded);
  out.push_back(bench::formatRow("degraded/bad cells after repair: %d",
                                 result.degradedAfterRepair));
  mesh.stop();
  bench::finishCell(s, cell);
  return result;
}

}  // namespace

int main() {
  bench::header("fig2_dashboard_mesh: perfSONAR mesh dashboard with a soft failure",
                "Figure 2 + Section 3.3, Dart et al. SC13");

  sim::SweepRunner sweep;
  const auto results = sweep.run<MeshResult>(
      1, [](sim::SweepCell& cell) { return runMesh(cell); }, "mesh");
  const MeshResult& mesh = results[0];
  for (const auto& line : mesh.lines) bench::row("%s", line.c_str());

  bench::JsonTable table("fig2_dashboard_mesh",
                         "perfSONAR mesh dashboard with a soft failure",
                         "Figure 2 + Section 3.3, Dart et al. SC13",
                         {"phase", "degraded_bad_cells", "alerts_raised"});
  table.addRow({"with_failing_card", mesh.degradedWithCard,
                static_cast<unsigned long long>(mesh.alertsRaised)});
  table.addRow({"after_repair", mesh.degradedAfterRepair,
                static_cast<unsigned long long>(mesh.alertsRaised)});
  table.addNote("1/22000 loss on lbl's uplink impairs the lbl-sourced dashboard row;"
                " repair clears it");
  table.write();
  bench::writeSweepReport(sweep, "fig2_dashboard_mesh");
  return 0;
}
