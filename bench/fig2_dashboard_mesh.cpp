// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run fig2_dashboard_mesh`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("fig2_dashboard_mesh"); }
