// Section 6.4: NERSC <-> OLCF DTN deployment — the carbon-14 collaboration
// whose 33 GB input files took a workday each before the DTNs.
#include "../bench/bench_util.hpp"
#include "usecase/nersc_olcf.hpp"

using namespace scidmz;

int main() {
  bench::header("usecase_nersc_olcf: inter-center mass storage transfers",
                "Section 6.4, Dart et al. SC13");

  const auto r = usecase::runNerscOlcf();
  bench::row("%-26s %-12s %-20s %-18s", "path", "rate_MBps", "33GB file", "40TB campaign");
  bench::row("%-26s %-12.2f %-20s %-18s", "login-node path (before)", r.beforeMBps,
             (std::to_string(r.fileTimeBefore.toSeconds() / 3600.0).substr(0, 4) + " hours").c_str(),
             "months");
  bench::row("%-26s %-12.1f %-20s %.2f days", "DTN to DTN (after)", r.afterMBps,
             (std::to_string(r.fileTimeAfter.toSeconds() / 60.0).substr(0, 4) + " minutes").c_str(),
             r.campaignTimeAfter.toSeconds() / 86400.0);
  bench::row("%s", "");
  bench::row("speedup: %.0fx    (paper: >workday for one 33 GB file -> 200 MB/s;", r.speedup());
  bench::row("40 TB in under three days; \"at least a factor of 20\" for many groups)");

  bench::JsonTable table("usecase_nersc_olcf", "inter-center mass storage transfers",
                         "Section 6.4, Dart et al. SC13",
                         {"path", "rate_MBps", "file_33gb_hours", "campaign_40tb_days"});
  table.addRow({"login-node path (before)", r.beforeMBps,
                r.fileTimeBefore.toSeconds() / 3600.0, "months"});
  table.addRow({"DTN to DTN (after)", r.afterMBps, r.fileTimeAfter.toSeconds() / 3600.0,
                r.campaignTimeAfter.toSeconds() / 86400.0});
  table.addNote(bench::formatRow(
      "speedup: %.0fx (paper: >workday for one 33 GB file -> 200 MB/s; 40 TB in under"
      " three days)",
      r.speedup()));
  table.write();
  return 0;
}
