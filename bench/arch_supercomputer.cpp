// Figure 4: the supercomputer-center design. A campaign of restart files
// streams from a remote experiment through the DTN pool onto the shared
// parallel filesystem; we report ingestion throughput as the pool scales,
// and the no-double-copy latency (file committed -> visible to compute,
// which is zero by construction of the shared filesystem).
#include "../bench/bench_util.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_cluster.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

struct Outcome {
  double aggregateMbps = 0;
  double elapsedSecs = 0;
  std::size_t filesVisible = 0;
};

Outcome ingest(int dtnCount, int files, sim::DataSize fileSize) {
  Scenario s;
  core::SiteConfig config;
  config.dtnCount = dtnCount;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 20_ms;
  // The remote source's archive reads slightly below its NIC rate so the
  // disk pump cannot pile unbounded backlog into the host queue when
  // several lanes share the single source.
  config.remoteStorage.readRate = sim::DataRate::megabitsPerSecond(9200);
  config.remoteStorage.perStreamCap = sim::DataRate::megabitsPerSecond(8000);
  auto center = core::buildSupercomputerCenter(s.topo, config);

  dtn::DtnCluster remote{"experiment"};
  remote.addNode(*center->remoteDtn);
  dtn::DtnCluster pool{"center"};
  for (auto* node : center->dtns) pool.addNode(*node);

  dtn::TransferCampaign campaign{remote, pool};
  for (int i = 0; i < files; ++i) {
    campaign.enqueue({"shot-" + std::to_string(i) + ".h5", fileSize});
  }
  Outcome out;
  campaign.onComplete = [&out](const dtn::TransferCampaign::Report& r) {
    out.aggregateMbps = r.aggregateRate().toMbps();
    out.elapsedSecs = r.elapsed.toSeconds();
  };
  campaign.start();
  s.simulator.runFor(3600_s);

  for (int i = 0; i < files; ++i) {
    if (center->parallelFs->available("shot-" + std::to_string(i) + ".h5",
                                      s.simulator.now())) {
      ++out.filesVisible;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::header("arch_supercomputer: DTN pool ingestion into a shared parallel filesystem",
                "Figure 4 + Sections 4.2 / 6.4, Dart et al. SC13");

  bench::JsonTable table(
      "arch_supercomputer", "DTN pool ingestion into a shared parallel filesystem",
      "Figure 4 + Sections 4.2 / 6.4, Dart et al. SC13",
      {"dtn_pool", "files", "aggregate_mbps", "elapsed_s", "files_visible_without_copy"});

  bench::row("%-10s %-8s %-16s %-12s %-22s", "dtn_pool", "files", "aggregate_mbps",
             "elapsed_s", "visible_without_copy");
  for (const int pool : {1, 2, 4}) {
    const auto out = ingest(pool, 8, 500_MB);
    bench::row("%-10d %-8d %-16.1f %-12.1f %zu/8", pool, 8, out.aggregateMbps, out.elapsedSecs,
               out.filesVisible);
    table.addRow({pool, 8, out.aggregateMbps, out.elapsedSecs,
                  static_cast<unsigned long long>(out.filesVisible)});
  }
  bench::row("%s", "");
  bench::row("note: every ingested file is visible on the shared filesystem the");
  bench::row("moment the DTN commits it; login nodes never copy data (Section 4.2).");
  bench::row("remote single DTN is the source; pool scaling amortizes per-file");
  bench::row("ramp-up until the sender or the WAN becomes the bottleneck.");
  table.addNote("every ingested file is visible on the shared filesystem the moment the DTN"
                " commits it; login nodes never copy data (Section 4.2)");
  table.addNote("pool scaling amortizes per-file ramp-up until the sender or the WAN becomes"
                " the bottleneck");
  table.write();
  return 0;
}
