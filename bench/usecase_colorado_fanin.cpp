// Section 6.1 / Figures 6-7: University of Colorado fan-in incident.
// Physics hosts on 1G ports pull LHC data through an aggregation switch
// whose cut-through fallback is defective. Rows: host count x fix state.
#include "../bench/bench_util.hpp"
#include "usecase/colorado.hpp"

using namespace scidmz;
using namespace scidmz::usecase;

int main() {
  bench::header("usecase_colorado_fanin: RCNet aggregation switch defect",
                "Section 6.1 + Figures 6-7, Dart et al. SC13");

  bench::JsonTable table(
      "usecase_colorado_fanin", "RCNet aggregation switch defect",
      "Section 6.1 + Figures 6-7, Dart et al. SC13",
      {"hosts", "fix", "latched_sf", "switch_drops", "worst_mbps", "aggregate_mbps"});

  bench::row("%-8s %-10s %-12s %-16s %-14s %-14s", "hosts", "fix", "latched_sf",
             "switch_drops", "worst_mbps", "aggregate_mbps");
  for (const int hosts : {2, 5, 8}) {
    for (const bool fixed : {false, true}) {
      ColoradoConfig config;
      config.physicsHosts = hosts;
      config.vendorFixApplied = fixed;
      const auto result = runColorado(config);
      bench::row("%-8d %-10s %-12s %-16llu %-14.1f %-14.1f", hosts, fixed ? "applied" : "no",
                 result.storeForwardLatched ? "yes" : "no",
                 static_cast<unsigned long long>(result.switchDrops), result.worstHostMbps(),
                 result.aggregateMbps);
      table.addRow({hosts, fixed ? "applied" : "no", result.storeForwardLatched ? "yes" : "no",
                    static_cast<unsigned long long>(result.switchDrops), result.worstHostMbps(),
                    result.aggregateMbps});
    }
  }
  bench::row("%s", "");
  bench::row("paper outcome: before the vendor fix, heavy use collapsed throughput");
  bench::row("(store-and-forward fallback lost its buffers); after the fix,");
  bench::row("\"performance returned to near line rate for each member\".");
  table.addNote("before the vendor fix, heavy use collapsed throughput; after the fix,"
                " performance returned to near line rate for each member");
  table.write();
  return 0;
}
