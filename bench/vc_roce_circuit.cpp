// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run vc_roce_circuit`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("vc_roce_circuit"); }
