// Section 7.1: virtual circuits and RDMA transports. OSCARS admission
// control carves a guaranteed 40G circuit; RoCE on that circuit matches
// TCP's goodput at ~1/50th the CPU (Kissel et al.: 39.5 Gbps single flow
// on a 40GE host); the same RoCE stream without a loss-free circuit
// collapses under go-back-N.
#include <memory>

#include "../bench/bench_util.hpp"
#include "vc/oscars.hpp"
#include "vc/roce.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

struct TransportRow {
  double gbps = 0;
  double cpuUnits = 0;
  double wastedGB = 0;
};

TransportRow runRoce(double lossRate) {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams circuit;
  circuit.rate = 40_Gbps;
  circuit.delay = 10_ms;
  circuit.mtu = 9000_B;
  auto& wire = s.topo.connect(a, b, circuit);
  if (lossRate > 0) {
    wire.setLossModel(0, std::make_unique<net::RandomLoss>(lossRate, s.rng.fork(6)));
  }
  s.topo.computeRoutes();

  vc::RoceTransfer::Options options;
  options.rate = 40_Gbps;
  vc::RoceTransfer transfer{a, b, 10_GB, options};
  transfer.start();
  s.simulator.runFor(600_s);

  TransportRow row;
  row.gbps = transfer.result().goodput.toGbps();
  row.cpuUnits = transfer.result().cpuUnits;
  row.wastedGB = transfer.result().bytesWasted.toGB();
  return row;
}

TransportRow runTcp() {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams circuit;
  circuit.rate = 40_Gbps;
  circuit.delay = 10_ms;
  circuit.mtu = 9000_B;
  s.topo.connect(a, b, circuit);
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = 512_MB;
  cfg.rcvBuf = 512_MB;
  SteadyFlow flow{s, a, b, cfg};
  TransportRow row;
  const auto rate = flow.measure(3_s, 4_s);
  row.gbps = rate.toGbps();
  row.cpuUnits = vc::tcpCpuUnits(rate.bytesIn(4_s));
  return row;
}

}  // namespace

int main() {
  bench::header("vc_roce_circuit: RoCE vs TCP on a guaranteed 40G virtual circuit",
                "Section 7.1 (OSCARS + RoCE, Kissel et al. numbers), Dart et al. SC13");

  // --- OSCARS carves the circuit ----------------------------------------
  {
    Scenario s;
    auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& sw = s.topo.addSwitch("core");
    auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams lp;
    lp.rate = 40_Gbps;
    s.topo.connect(a, sw, lp);
    s.topo.connect(sw, b, lp);
    s.topo.computeRoutes();
    vc::OscarsService oscars{s.topo};
    const auto start = sim::SimTime::zero();
    const auto id = oscars.reserve(a.address(), b.address(), 40_Gbps, start,
                                   start + sim::Duration::seconds(3600));
    bench::row("oscars: reserved 40G a->b for 1h: %s", id ? "granted" : "DENIED");
    const auto second = oscars.reserve(a.address(), b.address(), 1_Gbps, start,
                                       start + sim::Duration::seconds(3600));
    bench::row("oscars: a second 1G overlapping request: %s (admission control)",
               second ? "granted (bug)" : "denied, circuit is full");
  }

  bench::JsonTable table(
      "vc_roce_circuit", "RoCE vs TCP on a guaranteed 40G virtual circuit",
      "Section 7.1 (OSCARS + RoCE, Kissel et al. numbers), Dart et al. SC13",
      {"transport", "gbps", "cpu_units", "wasted_GB"});

  bench::row("%s", "");
  bench::row("%-30s %-12s %-14s %-12s", "transport", "gbps", "cpu_units", "wasted_GB");
  const auto tcp = runTcp();
  bench::row("%-30s %-12.1f %-14.3f %-12s", "tcp (htcp) on circuit", tcp.gbps, tcp.cpuUnits, "-");
  table.addRow({"tcp (htcp) on circuit", tcp.gbps, tcp.cpuUnits, "-"});
  const auto roce = runRoce(0.0);
  bench::row("%-30s %-12.1f %-14.3f %-12.2f", "roce on loss-free circuit", roce.gbps,
             roce.cpuUnits, roce.wastedGB);
  table.addRow({"roce on loss-free circuit", roce.gbps, roce.cpuUnits, roce.wastedGB});
  const auto roceLossy = runRoce(1e-4);
  bench::row("%-30s %-12.1f %-14.3f %-12.2f", "roce without circuit (1e-4 loss)",
             roceLossy.gbps, roceLossy.cpuUnits, roceLossy.wastedGB);
  table.addRow({"roce without circuit (1e-4 loss)", roceLossy.gbps, roceLossy.cpuUnits,
                roceLossy.wastedGB});
  bench::row("%s", "");
  bench::row("cpu per GB moved, tcp/roce: %.0fx (paper: ~50x less CPU;",
             vc::kTcpCpuUnitsPerGB / vc::kRoceCpuUnitsPerGB);
  bench::row("39.5 Gbps single flow on a 40GE host). without the circuit, go-back-N");
  bench::row("wastes the pipe: RoCE requires the loss-free guaranteed-bandwidth path.");
  table.addNote(bench::formatRow(
      "cpu per GB moved, tcp/roce: %.0fx (paper: ~50x less CPU); without the circuit,"
      " go-back-N wastes the pipe",
      vc::kTcpCpuUnitsPerGB / vc::kRoceCpuUnitsPerGB));
  table.write();
  return 0;
}
