// Ablation: sender pacing (the DTN tuning guides' fq pacing) against the
// burst behaviour Section 5 describes. A 10G host feeds a 1G egress
// through a switch whose buffer we sweep; bursty vs paced senders.
// The (buffer, paced) grid runs as parallel sweep cells.
#include <vector>

#include "../bench/bench_util.hpp"
#include "net/switch.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

namespace {

struct Outcome {
  double mbps = 0;
  std::uint64_t retx = 0;
};

Outcome run(bool paced, sim::DataSize buffer, sim::SweepCell& cell) {
  Scenario s;
  net::SwitchProfile profile;
  profile.egressBuffer = buffer;
  auto& sw = s.topo.addSwitch("agg", profile);
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams fast;
  fast.rate = 10_Gbps;
  fast.delay = 10_ms;
  fast.mtu = 9000_B;
  net::LinkParams slow;
  slow.rate = 1_Gbps;
  slow.delay = 10_ms;
  slow.mtu = 9000_B;
  s.topo.connect(a, sw, fast);
  s.topo.connect(sw, b, slow);
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = 8_MB;
  cfg.rcvBuf = 8_MB;
  cfg.pacing = paced;
  tcp::TcpListener listener{b, 5001, cfg};
  tcp::TcpConnection client{a, b.address(), 5001, cfg};
  tcp::TcpConnection* server = nullptr;
  listener.onAccept = [&server](tcp::TcpConnection& c) { server = &c; };
  client.onEstablished = [&client] { client.sendData(sim::DataSize::terabytes(1)); };
  client.start();
  s.simulator.runFor(20_s);

  Outcome o;
  o.mbps = server ? static_cast<double>(server->deliveredBytes().bitCount()) / 20.0 / 1e6 : 0.0;
  o.retx = client.stats().retransmits;
  bench::finishCell(s, cell);
  return o;
}

}  // namespace

int main() {
  bench::header("ablation_pacing: bursty vs paced senders into a slower egress",
                "Section 5 (TCP burst behaviour) + DTN tuning guidance, Dart et al. SC13");

  const std::vector<sim::DataSize> buffers{sim::DataSize::kibibytes(256),
                                           sim::DataSize::kibibytes(512),
                                           sim::DataSize::mebibytes(2), sim::DataSize::mebibytes(8)};
  // Cells in table order: (bursty, paced) per buffer size.
  sim::SweepRunner sweep;
  const auto results = sweep.run<Outcome>(
      buffers.size() * 2,
      [&buffers](sim::SweepCell& cell) {
        return run(cell.index % 2 == 1, buffers[cell.index / 2], cell);
      },
      "buffer_grid");

  bench::JsonTable table(
      "ablation_pacing", "bursty vs paced senders into a slower egress",
      "Section 5 (TCP burst behaviour) + DTN tuning guidance, Dart et al. SC13",
      {"egress_buffer", "bursty_mbps", "bursty_retx", "paced_mbps", "paced_retx"});

  bench::row("%-14s %-14s %-10s %-14s %-10s", "egress_buffer", "bursty_mbps", "retx",
             "paced_mbps", "retx");
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const auto& bursty = results[i * 2];
    const auto& paced = results[i * 2 + 1];
    bench::row("%-14s %-14.1f %-10llu %-14.1f %-10llu", sim::toString(buffers[i]).c_str(),
               bursty.mbps, static_cast<unsigned long long>(bursty.retx), paced.mbps,
               static_cast<unsigned long long>(paced.retx));
    table.addRow({sim::toString(buffers[i]), bursty.mbps,
                  static_cast<unsigned long long>(bursty.retx), paced.mbps,
                  static_cast<unsigned long long>(paced.retx)});
  }
  bench::row("%s", "");
  bench::row("line-rate bursts need the egress buffer to hold them; pacing shrinks");
  bench::row("the required buffer — the host-side complement to the deep-buffered");
  bench::row("switch the location pattern calls for.");
  table.addNote("line-rate bursts need the egress buffer to hold them; pacing shrinks the"
                " required buffer — the host-side complement to the deep-buffered switch");
  table.write();
  bench::writeSweepReport(sweep, "ablation_pacing");
  return 0;
}
