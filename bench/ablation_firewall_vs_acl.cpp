// Section 5 ablation: firewall appliance vs router ACLs in the science
// path. The firewall's aggregated lower-speed engines and small input
// buffer drop line-rate TCP bursts; ACL filtering in the forwarding plane
// is free. We also show the converse: the business-traffic profile (many
// small flows) that the firewall handles perfectly well.
#include <memory>

#include "../bench/bench_util.hpp"
#include "apps/background_traffic.hpp"
#include "net/firewall.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;
using scidmz::bench::SteadyFlow;

namespace {

struct PathResult {
  double mbps = 0;
  std::uint64_t middleboxDrops = 0;
};

/// One 10G science flow through the chosen middlebox at the given RTT.
PathResult scienceFlow(bool useFirewall, int rttMs) {
  Scenario s;
  auto& remote = s.topo.addHost("remote", net::Address(198, 128, 1, 1));
  auto& dtn = s.topo.addHost("dtn", net::Address(10, 10, 1, 10));
  net::LinkParams wan;
  wan.rate = 10_Gbps;
  wan.delay = sim::Duration::microseconds(rttMs * 500);
  wan.mtu = 9000_B;

  net::FirewallDevice* fw = nullptr;
  if (useFirewall) {
    // Sequence checking off: this ablation isolates the engine/buffer
    // pathology (the header-rewrite pathology is usecase_pennstate).
    auto profile = net::FirewallProfile::enterprise10G();
    profile.tcpSequenceChecking = false;
    fw = &s.topo.addFirewall("fw", profile);
    s.topo.connect(remote, *fw, wan);
    s.topo.connect(*fw, dtn, wan);
  } else {
    auto& sw = s.topo.addSwitch("dmz-switch");
    net::AclTable acl{net::AclAction::kDeny};
    net::AclRule permit;
    permit.action = net::AclAction::kPermit;  // the compiled DMZ policy shape
    acl.append(permit);
    sw.setAcl(acl);
    s.topo.connect(remote, sw, wan);
    s.topo.connect(sw, dtn, wan);
  }
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = 256_MB;
  cfg.rcvBuf = 256_MB;
  SteadyFlow flow{s, remote, dtn, cfg};
  PathResult out;
  out.mbps = flow.measure(5_s, 15_s).toMbps();
  if (fw != nullptr) out.middleboxDrops = fw->firewallStats().dropsInputBuffer;
  return out;
}

/// The business profile: hundreds of short flows through the firewall.
void businessProfile(bench::JsonTable& table) {
  Scenario s;
  auto& fw = s.topo.addFirewall("fw", net::FirewallProfile::enterprise10G());
  auto& outside = s.topo.addSwitch("outside");
  auto& inside = s.topo.addSwitch("inside");
  net::LinkParams lp;
  lp.rate = 10_Gbps;
  lp.delay = 5_ms;
  s.topo.connect(outside, fw, lp);
  s.topo.connect(fw, inside, lp);
  std::vector<net::Host*> clients;
  std::vector<net::Host*> servers;
  net::LinkParams edge;
  edge.rate = 1_Gbps;
  for (int i = 0; i < 4; ++i) {
    auto& c = s.topo.addHost("c" + std::to_string(i),
                             net::Address(198, 0, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(c, outside, edge);
    clients.push_back(&c);
    auto& v = s.topo.addHost("s" + std::to_string(i),
                             net::Address(10, 20, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(v, inside, edge);
    servers.push_back(&v);
  }
  s.topo.computeRoutes();

  apps::BackgroundProfile profile;
  profile.flowsPerSecond = 150;
  apps::BackgroundTraffic traffic{s.ctx, clients, servers, 20000, profile, s.rng.fork(3)};
  traffic.start();
  s.simulator.runFor(30_s);
  traffic.stop();
  s.simulator.runFor(10_s);

  const auto& st = fw.firewallStats();
  const double dropFrac =
      static_cast<double>(st.dropsInputBuffer) /
      static_cast<double>(std::max<std::uint64_t>(st.inspected + st.dropsInputBuffer, 1));
  bench::row("business mix through the SAME firewall: %llu flows, %.4f%% buffer drops",
             static_cast<unsigned long long>(traffic.stats().flowsStarted), dropFrac * 100.0);
  table.addNote(bench::formatRow(
      "business mix through the SAME firewall: %llu flows, %.4f%% buffer drops",
      static_cast<unsigned long long>(traffic.stats().flowsStarted), dropFrac * 100.0));
}

}  // namespace

int main() {
  bench::header("ablation_firewall_vs_acl: the science path's middlebox choice",
                "Section 5 (firewall internals, ACL alternative), Dart et al. SC13");

  bench::JsonTable table(
      "ablation_firewall_vs_acl", "the science path's middlebox choice",
      "Section 5 (firewall internals, ACL alternative), Dart et al. SC13",
      {"rtt_ms", "firewall_path_mbps", "acl_switch_path_mbps", "firewall_drops"});

  bench::row("%-8s %-22s %-22s %-16s", "rtt_ms", "firewall_path_mbps", "acl_switch_path_mbps",
             "firewall_drops");
  for (const int rtt : {5, 20, 60}) {
    const auto viaFw = scienceFlow(true, rtt);
    const auto viaAcl = scienceFlow(false, rtt);
    bench::row("%-8d %-22.1f %-22.1f %-16llu", rtt, viaFw.mbps, viaAcl.mbps,
               static_cast<unsigned long long>(viaFw.middleboxDrops));
    table.addRow({rtt, viaFw.mbps, viaAcl.mbps,
                  static_cast<unsigned long long>(viaFw.middleboxDrops)});
  }
  bench::row("%s", "");
  businessProfile(table);
  bench::row("%s", "");
  bench::row("the firewall is fine for what it was built for (many small flows) and");
  bench::row("ruinous for single line-rate science flows; ACLs filter at line rate.");
  table.addNote("the firewall is fine for what it was built for (many small flows) and"
                " ruinous for single line-rate science flows; ACLs filter at line rate");
  table.write();
  return 0;
}
