// Figure 5: the big-data site (LHC-scale). A transfer cluster behind
// redundant borders serves a multi-stream campaign while the enterprise
// network rides the same front-end behind its own firewall. We verify the
// science flows never touch the firewall, measure cluster throughput, and
// show the ACL policy doing the firewall's filtering job at line rate.
#include "../bench/bench_util.hpp"
#include "core/site_builder.hpp"
#include "core/validator.hpp"
#include "dtn/dtn_cluster.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;
using scidmz::bench::Scenario;

int main() {
  bench::header("arch_bigdata_cluster: LHC-scale data cluster front-end",
                "Figure 5 + Section 4.3, Dart et al. SC13");

  Scenario s;
  core::SiteConfig config;
  config.dtnCount = 6;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 20_ms;
  auto site = core::buildBigDataSite(s.topo, config);

  const auto findings = core::validate(*site);
  bench::row("validator: %zu critical findings on the science path",
             findings.criticalCount());

  // Campaign: 18 files spread across the 6-node cluster.
  dtn::DtnCluster remote{"tier0"};
  remote.addNode(*site->remoteDtn);
  dtn::DtnCluster cluster{"tier1"};
  for (auto* node : site->dtns) cluster.addNode(*node);
  dtn::TransferCampaign campaign{remote, cluster};
  for (int i = 0; i < 18; ++i) {
    campaign.enqueue({"aod-" + std::to_string(i) + ".root", 400_MB});
  }
  double mbps = 0;
  double secs = 0;
  campaign.onComplete = [&](const dtn::TransferCampaign::Report& r) {
    mbps = r.aggregateRate().toMbps();
    secs = r.elapsed.toSeconds();
  };
  campaign.start();
  s.simulator.runFor(3600_s);

  bench::row("campaign: 18 x 400 MB in %.1f s  ->  %.1f Mbps aggregate", secs, mbps);
  bench::row("firewall saw %llu science packets (must be 0: flows bypass it)",
             static_cast<unsigned long long>(site->enterpriseFirewall->firewallStats().inspected));
  bench::row("data-switch ACL drops (unsanctioned traffic): %llu",
             static_cast<unsigned long long>(site->dmzSwitch->stats().dropsAcl));

  // Demonstrate the ACL's filtering role: an unsanctioned probe toward a
  // cluster node is dropped in the forwarding plane.
  tcp::TcpConfig cfg;
  tcp::TcpListener sshListener{site->primaryDtn()->host(), 22, cfg};
  tcp::TcpConnection ssh{site->remoteDtn->host(), site->primaryDtn()->host().address(), 22, cfg};
  bool sshConnected = false;
  ssh.onEstablished = [&sshConnected] { sshConnected = true; };
  ssh.start();
  s.simulator.runFor(10_s);
  bench::row("unsanctioned ssh to a transfer node: %s; ACL drops now: %llu",
             sshConnected ? "CONNECTED (bug)" : "blocked in the switching plane",
             static_cast<unsigned long long>(site->dmzSwitch->stats().dropsAcl));

  bench::JsonTable table(
      "arch_bigdata_cluster", "LHC-scale data cluster front-end",
      "Figure 5 + Section 4.3, Dart et al. SC13",
      {"metric", "value"});
  table.addRow({"validator_critical_findings",
                static_cast<unsigned long long>(findings.criticalCount())});
  table.addRow({"campaign_elapsed_s", secs});
  table.addRow({"campaign_aggregate_mbps", mbps});
  table.addRow({"firewall_inspected_science_packets",
                static_cast<unsigned long long>(
                    site->enterpriseFirewall->firewallStats().inspected)});
  table.addRow({"acl_drops",
                static_cast<unsigned long long>(site->dmzSwitch->stats().dropsAcl)});
  table.addRow({"unsanctioned_ssh", sshConnected ? "connected" : "blocked"});
  table.addNote("science flows bypass the enterprise firewall entirely; the data-switch ACL"
                " filters unsanctioned traffic at line rate");
  table.write();
  return 0;
}
