// Thin wrapper: the scenario lives in the catalog (src/scenario/) and can
// also be driven via `scidmz_run --run arch_bigdata_cluster`.
#include "scenario/run.hpp"

int main() { return scidmz::scenario::runScenarioMain("arch_bigdata_cluster"); }
