#!/usr/bin/env python3
"""Performance ratchet: fail CI when a committed benchmark baseline regresses.

Usage:
    perf_ratchet.py BASELINE.json MEASURED.json [--tolerance 0.05]

Both files are scidmz sweep reports (the SCIDMZ_BENCH_JSON output of a bench
binary): {"benchmark": ..., "runs": [{"name", "events_per_second",
"packets_per_second", ...}]}.  For every run present in the baseline, the
measured file must contain a run with the same name whose throughput is no
more than `tolerance` below the baseline.  Runs only present in the measured
file are ignored (new benchmarks don't need a baseline to land), but a run
that disappears from the measured file is an error: renaming a benchmark must
come with a baseline update in the same commit.

Throughput metrics compared: events_per_second always; packets_per_second
and flows_per_second only when the baseline value is non-zero (timer-only
schedules forward no packets, pre-FlowFactory baselines record no flows,
and 0 vs 0 is not a regression).

Absolute numbers are machine-dependent, so the committed baseline should be
regenerated on the CI runner class (see EXPERIMENTS.md).  The tolerance
absorbs runner noise; the default 5% matches the gate described in
.github/workflows/perf.yml.  Override per-invocation with --tolerance or the
SCIDMZ_RATCHET_TOLERANCE environment variable (the flag wins).

Exit status: 0 when every gated metric is within tolerance, 1 on regression
or missing run, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


GATED_METRICS = ("events_per_second", "packets_per_second", "flows_per_second")


def load_runs(path: str) -> dict[str, dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf_ratchet: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    runs = doc.get("runs")
    if not isinstance(runs, list):
        print(f"perf_ratchet: {path} has no 'runs' array", file=sys.stderr)
        sys.exit(2)
    by_name: dict[str, dict] = {}
    for run in runs:
        name = run.get("name")
        if not isinstance(name, str):
            print(f"perf_ratchet: {path} contains a run without a name",
                  file=sys.stderr)
            sys.exit(2)
        by_name[name] = run
    return by_name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline sweep report")
    parser.add_argument("measured", help="freshly measured sweep report")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("SCIDMZ_RATCHET_TOLERANCE", "0.05")),
        help="allowed fractional regression (default 0.05 = 5%%)")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    measured = load_runs(args.measured)

    failures = []
    checked = 0
    for name, base_run in sorted(baseline.items()):
        meas_run = measured.get(name)
        if meas_run is None:
            failures.append(f"run '{name}' present in baseline but missing "
                            f"from measured report")
            continue
        for metric in GATED_METRICS:
            base = float(base_run.get(metric, 0.0))
            if base <= 0.0:
                continue  # nothing to ratchet against
            meas = float(meas_run.get(metric, 0.0))
            floor = base * (1.0 - args.tolerance)
            checked += 1
            verdict = "ok" if meas >= floor else "REGRESSION"
            print(f"  {name}.{metric}: baseline {base:,.0f}  "
                  f"measured {meas:,.0f}  floor {floor:,.0f}  [{verdict}]")
            if meas < floor:
                drop = 100.0 * (1.0 - meas / base)
                failures.append(
                    f"{name}.{metric} regressed {drop:.1f}% "
                    f"(baseline {base:,.0f}, measured {meas:,.0f}, "
                    f"tolerance {100.0 * args.tolerance:.0f}%)")

    if failures:
        print(f"perf_ratchet: FAIL ({len(failures)} problem(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"perf_ratchet: OK — {checked} metric(s) within "
          f"{100.0 * args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
