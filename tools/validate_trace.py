#!/usr/bin/env python3
"""Validate telemetry artifacts against their schemas (stdlib only).

Usage: validate_trace.py FILE [FILE ...]
       validate_trace.py --profile-diff A.json B.json

Dispatch is by content:
  binary starting "scidmz.snap.v1\\n"  -> simulation snapshot blob
                                          (section framing + clock header)
  binary starting "scidmz.frbin.v1\\n" -> binary flight-recorder export
                                          (fully decoded and cross-checked)
  *.jsonl                       -> scidmz.trace.v1 (one flight event per line)
  *.jsonl whose header line is
  {"schema": "scidmz.spans.v1"} -> causal span export (scidmz_run --trace)
  {"schema": "scidmz.telemetry.v1"}    -> snapshot
  {"schema": "scidmz.profile.v1"}      -> self-profiler export
                                          (scidmz_run --profile)
  {"schema": "scidmz.bench.table.v1"}  -> bench table
  {"schema": "scidmz.scenario.v1"}     -> declarative scenario spec
  {"schema": "scidmz.scenario.v2"}     -> spec with per-flow fidelity fields
  {"schema": "scidmz.scenario.catalog.v1"} -> scidmz_run --dump catalog
                                          (embedded specs validated too)
  {"benchmark": ..., "runs": [...]}    -> BENCH_sim.json sweep report
                                          (embedded telemetry validated too;
                                          spans_emitted cross-checked against
                                          per-cell spans and flows_created)

--profile-diff compares two scidmz.profile.v1 files after discarding the
machine-dependent "host" object: the deterministic remainder (event counts,
source attribution, occupancy, high-water marks) must be identical. CI uses
this to prove profiles agree across SCIDMZ_SWEEP_THREADS settings.

Exits non-zero on the first structural violation, printing file:line context.
Used by the CI telemetry smoke job; handy locally after any bench run.
"""

import json
import re
import sys

TRACE_EVENTS = {"enqueue", "dequeue", "drop", "link_loss", "retransmit", "deliver"}
TRACE_PROTOS = {"tcp", "udp", "other"}
IP_RE = re.compile(r"^\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}$")


class ValidationError(Exception):
    pass


def fail(where, message):
    raise ValidationError(f"{where}: {message}")


def require(cond, where, message):
    if not cond:
        fail(where, message)


def check_uint(obj, key, where, bits=64):
    require(key in obj, where, f"missing key {key!r}")
    value = obj[key]
    require(isinstance(value, int) and not isinstance(value, bool), where,
            f"{key!r} must be an integer, got {type(value).__name__}")
    require(0 <= value < 2 ** bits, where, f"{key!r}={value} out of range")
    return value


def check_str(obj, key, where):
    require(key in obj, where, f"missing key {key!r}")
    require(isinstance(obj[key], str), where, f"{key!r} must be a string")
    return obj[key]


def validate_trace_line(event, where, prev_t, depths):
    t = check_uint(event, "t_ns", where)
    require(t >= prev_t, where, f"t_ns={t} goes backwards (previous {prev_t})")
    ev = check_str(event, "ev", where)
    require(ev in TRACE_EVENTS, where, f"unknown ev {ev!r}")
    point = check_str(event, "point", where)
    check_uint(event, "pkt", where)
    for key in ("src", "dst"):
        ip = check_str(event, key, where)
        require(IP_RE.match(ip) and all(int(o) < 256 for o in ip.split(".")),
                where, f"{key!r}={ip!r} is not a dotted quad")
    check_uint(event, "sport", where, bits=16)
    check_uint(event, "dport", where, bits=16)
    proto = check_str(event, "proto", where)
    require(proto in TRACE_PROTOS, where, f"unknown proto {proto!r}")
    nbytes = check_uint(event, "bytes", where, bits=32)
    check_uint(event, "seq", where)
    depth = check_uint(event, "depth", where)

    # Per-point queue-depth bookkeeping. enqueue/dequeue record the depth
    # *after* the queue mutated, and a drop at a queue point leaves it
    # unchanged, so consecutive events at one point must chain exactly:
    #   enqueue: depth == prev + bytes
    #   dequeue: depth == prev - bytes
    #   drop:    depth == prev
    # The ring buffer may have overwritten the start of a point's history,
    # so the first enqueue/dequeue seen at a point only seeds its depth;
    # drops at points with no queue history (ACL, TTL, no-route, firewall
    # verdicts) carry depth 0 and are never tracked.
    if ev in ("enqueue", "dequeue"):
        prev_depth = depths.get(point)
        if prev_depth is not None:
            expect = prev_depth + nbytes if ev == "enqueue" else prev_depth - nbytes
            require(expect >= 0, where,
                    f"point {point!r}: dequeue of {nbytes} bytes from depth {prev_depth}")
            require(depth == expect, where,
                    f"point {point!r}: depth {depth} after {ev} of {nbytes} bytes, "
                    f"expected {expect} (previous depth {prev_depth})")
        elif ev == "enqueue":
            require(depth >= nbytes, where,
                    f"point {point!r}: enqueue of {nbytes} bytes reports depth {depth}")
        depths[point] = depth
    elif ev == "drop" and point in depths:
        require(depth == depths[point], where,
                f"point {point!r}: drop changed depth {depths[point]} -> {depth}")
    return t


def validate_trace(path):
    count = 0
    prev_t = 0
    depths = {}
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                fail(where, f"invalid JSON: {err}")
            require(isinstance(event, dict), where, "line is not a JSON object")
            prev_t = validate_trace_line(event, where, prev_t, depths)
            count += 1
    require(count > 0, path, "trace contains no events")
    return (f"scidmz.trace.v1, {count} events, time monotone, "
            f"{len(depths)} queue points depth-consistent")


def validate_spans_line(span, where, span_count, spans_by_id, now_ns):
    span_id = check_uint(span, "id", where)
    require(span_id == span_count + 1, where,
            f"id {span_id} out of sequence (expected {span_count + 1})")
    parent = check_uint(span, "parent", where)
    require(parent < span_id, where,
            f"parent {parent} does not precede span {span_id}")
    check_str(span, "name", where)
    check_str(span, "cat", where)
    t0 = check_uint(span, "t0_ns", where)
    t1 = check_uint(span, "t1_ns", where)
    require(t0 <= t1, where, f"t0_ns={t0} > t1_ns={t1}")
    is_open = span.get("open")
    require(isinstance(is_open, bool), where, "'open' must be a boolean")
    if is_open:
        require(t1 == now_ns, where,
                f"open span must be virtually closed at now_ns={now_ns}, got t1_ns={t1}")
    if "args" in span:
        require(isinstance(span["args"], dict) and span["args"], where,
                "'args' must be a non-empty object when present")
    if parent != 0:
        require(parent in spans_by_id, where, f"parent {parent} not seen")
        p_t0, p_t1 = spans_by_id[parent]
        # Children nest inside their parent's bounds (open spans compare
        # against the parent's virtual close at now_ns).
        require(p_t0 <= t0 and t1 <= p_t1, where,
                f"span {span_id} [{t0}, {t1}] escapes parent {parent} "
                f"[{p_t0}, {p_t1}]")
    spans_by_id[span_id] = (t0, t1)
    return is_open


def validate_spans(path):
    span_count = 0
    open_count = 0
    header = None
    spans_by_id = {}
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as err:
                fail(where, f"invalid JSON: {err}")
            require(isinstance(doc, dict), where, "line is not a JSON object")
            if header is None:
                require(doc.get("schema") == "scidmz.spans.v1", where,
                        "first line must carry the scidmz.spans.v1 header")
                check_uint(doc, "spans", where)
                check_uint(doc, "open", where)
                check_uint(doc, "now_ns", where)
                header = doc
                continue
            if validate_spans_line(doc, where, span_count, spans_by_id, header["now_ns"]):
                open_count += 1
            span_count += 1
    require(header is not None, path, "missing scidmz.spans.v1 header")
    require(span_count == header["spans"], path,
            f"header says {header['spans']} spans, file has {span_count}")
    require(open_count == header["open"], path,
            f"header says {header['open']} open spans, file has {open_count}")
    return (f"scidmz.spans.v1, {span_count} spans ({open_count} open), "
            f"ids dense, children nested within parents")


def validate_profile(doc, where):
    require(doc.get("schema") == "scidmz.profile.v1", where, "wrong schema")
    events = check_uint(doc, "events_profiled", where)
    sources = doc.get("sources")
    require(isinstance(sources, dict), where, "'sources' must be an object")
    counted = 0
    for name, stats in sources.items():
        require(isinstance(stats, dict), where, f"source {name!r} must be an object")
        counted += check_uint(stats, "count", where)
    require(counted == events, where,
            f"source counts sum to {counted}, events_profiled is {events}")
    occupancy = doc.get("occupancy")
    require(isinstance(occupancy, dict), where, "'occupancy' must be an object")
    samples = check_uint(occupancy, "samples", where)
    check_uint(occupancy, "max_pending", where)
    check_uint(occupancy, "max_parked", where)
    log2 = occupancy.get("log2_pending")
    require(isinstance(log2, list), where, "'log2_pending' must be a list")
    require(all(isinstance(b, int) and b >= 0 for b in log2), where,
            "'log2_pending' buckets must be non-negative integers")
    require(sum(log2) == samples, where,
            f"log2_pending buckets sum to {sum(log2)}, samples is {samples}")
    high_water = doc.get("high_water")
    require(isinstance(high_water, dict), where, "'high_water' must be an object")
    for name in high_water:
        check_uint(high_water, name, where)
    host = doc.get("host")
    require(isinstance(host, dict), where, "'host' must be an object")
    host_sources = host.get("sources")
    require(isinstance(host_sources, dict), where, "'host.sources' must be an object")
    require(set(host_sources) == set(sources), where,
            "host.sources does not mirror the deterministic sources")
    for name, stats in host_sources.items():
        check_uint(stats, "total_ns", where)
        latency = stats.get("latency_log2_ns")
        require(isinstance(latency, list), where,
                f"host source {name!r}: 'latency_log2_ns' must be a list")
        require(sum(latency) == sources[name]["count"], where,
                f"host source {name!r}: latency buckets sum to {sum(latency)}, "
                f"count is {sources[name]['count']}")
    return (f"scidmz.profile.v1, {events} events across {len(sources)} sources, "
            f"{samples} occupancy samples, {len(high_water)} high-water marks")


def strip_host(doc):
    return {key: value for key, value in doc.items() if key != "host"}


def profile_diff(path_a, path_b):
    docs = []
    for path in (path_a, path_b):
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        validate_profile(doc, path)
        docs.append(strip_host(doc))
    if docs[0] != docs[1]:
        keys = [key for key in docs[0]
                if docs[0].get(key) != docs[1].get(key)]
        fail(f"{path_a} vs {path_b}",
             f"deterministic profile fields differ: {', '.join(keys)}")
    return f"{path_a} == {path_b} (ignoring host)"


def validate_snapshot(doc, where):
    require(doc.get("schema") == "scidmz.telemetry.v1", where, "wrong schema")
    for section in ("counters", "gauges", "series"):
        require(isinstance(doc.get(section), dict), where,
                f"{section!r} must be a JSON object")
    names = list(doc["counters"])
    require(names == sorted(names), where, "counters are not sorted by name")
    for name, value in doc["counters"].items():
        require(isinstance(value, int) and value >= 0, where,
                f"counter {name!r} must be a non-negative integer")
    for name, value in doc["gauges"].items():
        require(isinstance(value, (int, float)), where, f"gauge {name!r} must be numeric")
    for name, series in doc["series"].items():
        require(isinstance(series, dict), where, f"series {name!r} must be an object")
        check_uint(series, "samples", where)
        for key in ("first", "last", "min", "max", "mean"):
            require(isinstance(series.get(key), (int, float)), where,
                    f"series {name!r} missing numeric {key!r}")
    flight = doc.get("flight_recorder")
    require(isinstance(flight, dict), where, "missing flight_recorder section")
    recorded = check_uint(flight, "recorded", where)
    retained = check_uint(flight, "retained", where)
    overwritten = check_uint(flight, "overwritten", where)
    require(recorded == retained + overwritten, where,
            f"recorded ({recorded}) != retained ({retained}) + overwritten ({overwritten})")
    return (f"scidmz.telemetry.v1, {len(doc['counters'])} counters, "
            f"{len(doc['series'])} series")


def validate_table(doc, where):
    require(doc.get("schema") == "scidmz.bench.table.v1", where, "wrong schema")
    check_str(doc, "bench", where)
    check_str(doc, "title", where)
    check_str(doc, "paper_ref", where)
    columns = doc.get("columns")
    require(isinstance(columns, list) and columns, where, "columns must be non-empty")
    rows = doc.get("rows")
    require(isinstance(rows, list), where, "rows must be a list")
    for i, row in enumerate(rows):
        require(isinstance(row, list) and len(row) == len(columns), where,
                f"row {i} has {len(row)} cells, expected {len(columns)}")
        for cell in row:
            require(isinstance(cell, (int, float, str)), where,
                    f"row {i} cell {cell!r} is not a number or string")
    require(isinstance(doc.get("notes"), list), where, "notes must be a list")
    return f"scidmz.bench.table.v1, bench {doc['bench']!r}, {len(rows)} rows"


TOPOLOGY_KINDS = {"path", "fanin", "enterprise_edge", "site", "usecase"}
WORKLOAD_KINDS = {"steady_flow", "converging_flows", "timed_flow", "parallel_transfer",
                  "dtn_transfer", "campaign", "probe", "roce", "background"}
SCENARIO_FAMILIES = {"figure", "arch", "usecase", "ablation", "vc"}


FLOW_FIDELITIES = {"packet", "fluid", "auto"}


def validate_scenario_spec(doc, where):
    schema = doc.get("schema")
    require(schema in ("scidmz.scenario.v1", "scidmz.scenario.v2"), where, "wrong schema")
    v2 = schema == "scidmz.scenario.v2"
    check_str(doc, "name", where)
    check_uint(doc, "seed", where)
    require(isinstance(doc.get("telemetry"), bool), where, "'telemetry' must be a boolean")
    topology = doc.get("topology")
    require(isinstance(topology, dict), where, "'topology' must be an object")
    kind = check_str(topology, "kind", where)
    require(kind in TOPOLOGY_KINDS, where, f"unknown topology kind {kind!r}")
    require(kind in topology, where, f"topology is missing its {kind!r} section")
    analysis = doc.get("analysis")
    require(isinstance(analysis, dict), where, "'analysis' must be an object")
    workloads = doc.get("workloads")
    require(isinstance(workloads, list), where, "'workloads' must be a list")
    for i, workload in enumerate(workloads):
        require(isinstance(workload, dict), where, f"workload {i} is not an object")
        wkind = check_str(workload, "kind", where)
        require(wkind in WORKLOAD_KINDS, where,
                f"workload {i}: unknown kind {wkind!r}")
        # v2-only fields: per-flow model fidelity, mixed-fidelity fan-in.
        if "fidelity" in workload:
            require(v2, where, f"workload {i}: 'fidelity' requires schema scidmz.scenario.v2")
            fidelity = check_str(workload, "fidelity", where)
            require(fidelity in FLOW_FIDELITIES, where,
                    f"workload {i}: unknown fidelity {fidelity!r}")
        if "fluid_flows" in workload:
            require(v2, where,
                    f"workload {i}: 'fluid_flows' requires schema scidmz.scenario.v2")
            require(wkind == "converging_flows", where,
                    f"workload {i}: 'fluid_flows' only applies to converging_flows")
            check_uint(workload, "fluid_flows", where)
    return (f"{schema}, scenario {doc['name']!r}, topology {kind!r}, "
            f"{len(workloads)} workloads")


def validate_scenario_catalog(doc, where):
    require(doc.get("schema") == "scidmz.scenario.catalog.v1", where, "wrong schema")
    scenarios = doc.get("scenarios")
    require(isinstance(scenarios, list) and scenarios, where, "scenarios must be non-empty")
    specs = 0
    for entry in scenarios:
        name = check_str(entry, "name", where)
        family = check_str(entry, "family", where)
        require(family in SCENARIO_FAMILIES, where,
                f"scenario {name!r}: unknown family {family!r}")
        check_str(entry, "title", where)
        check_str(entry, "sweep", where)
        native = entry.get("native")
        require(isinstance(native, bool), where, f"scenario {name!r}: 'native' must be a bool")
        cells = check_uint(entry, "cells", where)
        if native:
            require("specs" not in entry, where,
                    f"native scenario {name!r} must not embed specs")
            continue
        require(isinstance(entry.get("specs"), list), where,
                f"scenario {name!r} is missing its specs")
        require(len(entry["specs"]) == cells, where,
                f"scenario {name!r}: {len(entry['specs'])} specs but cells={cells}")
        for spec in entry["specs"]:
            validate_scenario_spec(spec, f"{where} ({name})")
            specs += 1
    return (f"scidmz.scenario.catalog.v1, {len(scenarios)} scenarios, "
            f"{specs} embedded specs")


def validate_bench_report(doc, where):
    check_str(doc, "benchmark", where)
    runs = doc.get("runs")
    require(isinstance(runs, list) and runs, where, "runs must be non-empty")
    cells_with_telemetry = 0
    for run in runs:
        check_str(run, "name", where)
        cell_stats = run.get("cell_stats")
        require(isinstance(cell_stats, list), where, "missing cell_stats")
        require(len(cell_stats) == run.get("cells"), where,
                f"cell_stats length {len(cell_stats)} != cells {run.get('cells')}")
        cell_flows = 0
        cell_spans = 0
        for cell in cell_stats:
            if "flows" in cell:
                cell_flows += check_uint(cell, "flows", where)
            if "spans" in cell:
                cell_spans += check_uint(cell, "spans", where)
            if "domains" in cell:
                domains = check_uint(cell, "domains", where)
                require(domains >= 1, where,
                        f"run {run['name']!r}: cell domains must be >= 1")
                if "domain_events" in cell:
                    split = cell["domain_events"]
                    require(isinstance(split, list), where,
                            f"run {run['name']!r}: domain_events must be a list")
                    require(len(split) == domains, where,
                            f"run {run['name']!r}: domain_events has {len(split)} "
                            f"entries for {domains} domains")
                    require(all(isinstance(e, int) and e >= 0 for e in split), where,
                            f"run {run['name']!r}: domain_events entries must be "
                            f"non-negative integers")
                    require(sum(split) == cell.get("events"), where,
                            f"run {run['name']!r}: domain_events sums to "
                            f"{sum(split)} but the cell executed {cell.get('events')}")
            else:
                require("domain_events" not in cell, where,
                        f"run {run['name']!r}: domain_events without domains")
            if "telemetry" in cell:
                validate_snapshot(cell["telemetry"], where)
                cells_with_telemetry += 1
        if "flows_created" in run:
            total = check_uint(run, "flows_created", where)
            require(cell_flows == total, where,
                    f"run {run['name']!r}: flows_created {total} != "
                    f"sum of cell flows {cell_flows}")
            require(isinstance(run.get("flows_per_second"), (int, float)), where,
                    f"run {run['name']!r}: missing numeric flows_per_second")
        if "spans_emitted" in run:
            total_spans = check_uint(run, "spans_emitted", where)
            require(cell_spans == total_spans, where,
                    f"run {run['name']!r}: spans_emitted {total_spans} != "
                    f"sum of cell spans {cell_spans}")
            # Every traced flow opens a root span, so with tracing on the
            # span count bounds the flow count from above.
            if total_spans > 0 and "flows_created" in run:
                require(total_spans >= run["flows_created"], where,
                        f"run {run['name']!r}: {total_spans} spans < "
                        f"{run['flows_created']} flows (each flow opens a root span)")
    return (f"BENCH_sim.json, benchmark {doc['benchmark']!r}, {len(runs)} runs, "
            f"{cells_with_telemetry} instrumented cells")


SNAP_MAGIC = b"scidmz.snap.v1\n"
FRBIN_MAGIC = b"scidmz.frbin.v1\n"
FRBIN_KINDS = 6  # enqueue, dequeue, drop, link_loss, retransmit, deliver


class BlobReader:
    """Byte-aligned reader for the sim::Codec wire format (varints are
    LEB128, signed values zigzag, sections are fourcc + u32le length)."""

    def __init__(self, data, where):
        self.data = data
        self.pos = 0
        self.where = where

    def take(self, n):
        require(self.pos + n <= len(self.data), self.where,
                f"truncated at byte {self.pos} (need {n} more)")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return int.from_bytes(self.take(4), "little")

    def varint(self):
        out = 0
        for shift in range(0, 70, 7):
            group = self.u8()
            out |= (group & 0x7F) << shift
            if not group & 0x80:
                return out
        fail(self.where, "unterminated varint")

    def zigzag(self):
        z = self.varint()
        return (z >> 1) ^ -(z & 1)

    def string(self):
        return self.take(self.varint()).decode("utf-8", errors="replace")

    def section(self, fourcc):
        got = self.take(4)
        require(got == fourcc, self.where,
                f"expected section {fourcc!r} at byte {self.pos - 4}, got {got!r}")
        length = self.u32()
        require(self.pos + length <= len(self.data), self.where,
                f"section {fourcc!r} claims {length} bytes, "
                f"only {len(self.data) - self.pos} remain")
        return length


def validate_snap_blob(data, path):
    reader = BlobReader(data[len(SNAP_MAGIC):], path)
    clk_len = reader.section(b"CLK ")
    clk_end = reader.pos + clk_len
    now_ns = reader.zigzag()
    require(now_ns >= 0, path, f"clock now_ns={now_ns} is negative")
    executed = reader.varint()
    next_seq = reader.varint()
    pending = reader.varint()
    daemons = reader.varint()
    require(reader.pos <= clk_end, path, "CLK body overran its declared length")
    require(next_seq >= executed + pending, path,
            f"sequence counter {next_seq} < executed {executed} + pending {pending}")
    require(daemons <= pending, path,
            f"daemon count {daemons} exceeds pending events {pending}")
    reader.pos = clk_end
    body_len = reader.section(b"BODY")
    reader.pos += body_len
    require(reader.pos == len(reader.data), path,
            f"{len(reader.data) - reader.pos} trailing bytes after BODY section")
    return (f"scidmz.snap.v1, t={now_ns} ns, {executed} events executed, "
            f"{pending} pending ({daemons} daemons), BODY {body_len} bytes")


def validate_frbin(data, path):
    reader = BlobReader(data[len(FRBIN_MAGIC):], path)
    pts_len = reader.section(b"PTS ")
    pts_end = reader.pos + pts_len
    n_points = reader.varint()
    points = [reader.string() for _ in range(n_points)]
    require(reader.pos <= pts_end, path, "PTS body overran its declared length")
    reader.pos = pts_end
    evts_len = reader.section(b"EVTS")
    evts_end = reader.pos + evts_len
    n_events = reader.varint()
    prev_ns = 0
    n_flows = 0  # flow tuples are interned in stream order (no dictionary section)
    for i in range(n_events):
        where = f"{path} (event {i})"
        t_ns = prev_ns + reader.zigzag()
        require(t_ns >= prev_ns, where,
                f"t_ns={t_ns} goes backwards (previous {prev_ns})")
        prev_ns = t_ns
        for _ in range(3):   # packetId, aux, aux2
            reader.varint()
        flow_ref = reader.varint()
        require(flow_ref <= n_flows, where,
                f"flow ref {flow_ref} out of range ({n_flows} interned)")
        if flow_ref == n_flows:  # first sighting carries the full 5-tuple
            for _ in range(4):   # src, dst, sport, dport
                reader.varint()
            reader.u8()          # proto
            n_flows += 1
        reader.varint()      # bytes
        point = reader.varint()
        require(point < n_points, where,
                f"point index {point} out of range ({n_points} interned)")
        kind = reader.u8()
        require(kind < FRBIN_KINDS, where, f"unknown event kind {kind}")
    require(reader.pos <= evts_end, path, "EVTS body overran its declared length")
    reader.pos = evts_end
    require(reader.pos == len(reader.data), path,
            f"{len(reader.data) - reader.pos} trailing bytes after EVTS section")
    return (f"scidmz.frbin.v1, {n_events} events over {len(points)} points "
            f"and {n_flows} flows, time monotone, refs in range")


def first_line_schema(path):
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                return None
            return doc.get("schema") if isinstance(doc, dict) else None
    return None


def validate_file(path):
    with open(path, "rb") as handle:
        head = handle.read(max(len(SNAP_MAGIC), len(FRBIN_MAGIC)))
    if head.startswith(SNAP_MAGIC) or head.startswith(FRBIN_MAGIC):
        with open(path, "rb") as handle:
            data = handle.read()
        if head.startswith(SNAP_MAGIC):
            return validate_snap_blob(data, path)
        return validate_frbin(data, path)
    if path.endswith(".jsonl"):
        if first_line_schema(path) == "scidmz.spans.v1":
            return validate_spans(path)
        return validate_trace(path)
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    require(isinstance(doc, dict), path, "top level is not a JSON object")
    schema = doc.get("schema")
    if schema == "scidmz.telemetry.v1":
        return validate_snapshot(doc, path)
    if schema == "scidmz.profile.v1":
        return validate_profile(doc, path)
    if schema == "scidmz.bench.table.v1":
        return validate_table(doc, path)
    if schema in ("scidmz.scenario.v1", "scidmz.scenario.v2"):
        return validate_scenario_spec(doc, path)
    if schema == "scidmz.scenario.catalog.v1":
        return validate_scenario_catalog(doc, path)
    if "benchmark" in doc and "runs" in doc:
        return validate_bench_report(doc, path)
    fail(path, f"unrecognized document (schema={schema!r})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--profile-diff":
        if len(argv) != 4:
            print("usage: validate_trace.py --profile-diff A.json B.json", file=sys.stderr)
            return 2
        try:
            summary = profile_diff(argv[2], argv[3])
        except ValidationError as err:
            print(f"FAIL {err}", file=sys.stderr)
            return 1
        except OSError as err:
            print(f"FAIL {err}", file=sys.stderr)
            return 1
        print(f"OK   {summary}")
        return 0
    for path in argv[1:]:
        try:
            summary = validate_file(path)
        except ValidationError as err:
            print(f"FAIL {err}", file=sys.stderr)
            return 1
        except OSError as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            return 1
        print(f"OK   {path}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
