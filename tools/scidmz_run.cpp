// scidmz_run — one driver for the whole scenario catalog.
//
//   scidmz_run --list                     # catalog: name, family, cells, title
//   scidmz_run --run fig1_tcp_loss_rtt    # run a catalog entry (repeatable)
//   scidmz_run --spec myspec.json         # run an ad-hoc scidmz.scenario.v1 spec
//   scidmz_run --spec s.json --sweep topology.path.link.rateMbps=1000,10000
//   scidmz_run --dump                     # scidmz.scenario.catalog.v1 to stdout
//   scidmz_run --out DIR ...              # artifacts under DIR (unless the
//                                         # SCIDMZ_* env vars already say else)
//   scidmz_run --fidelity=fluid --run ... # override flow model fidelity for
//                                         # every non-pinned flow this run
//   scidmz_run --domains=8 --run ...      # sharded parallel execution: cut
//                                         # the topology at WAN links into N
//                                         # per-worker domains (results byte-
//                                         # identical at any N)
//   scidmz_run --trace=BASE --run ...     # causal span traces per cell:
//                                         # BASE.cellN.spans.jsonl + Perfetto
//                                         # BASE.cellN.trace.json
//   scidmz_run --profile=BASE --run ...   # event-loop self-profile per cell:
//                                         # BASE.cellN.profile.json
//   scidmz_run report SPANS.jsonl...      # per-transfer critical-path
//                                         # breakdown from span traces
//
// Catalog runs produce byte-identical output to the legacy bench binaries;
// ad-hoc specs print every engine metric per sweep cell and mirror them
// into <name>.table.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "scenario/bench_io.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/harness.hpp"
#include "scenario/json.hpp"
#include "scenario/observability.hpp"
#include "scenario/run.hpp"
#include "scenario/shard.hpp"
#include "scenario/spec.hpp"
#include "telemetry/flight_recorder.hpp"

namespace {

using namespace scidmz;
using scenario::Json;
using scenario::ScenarioRegistry;
using scenario::ScenarioSpec;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out DIR] [--fidelity packet|fluid|auto] [--domains N] \\\n"
               "          [--trace BASE] [--profile BASE] [--list] [--dump] [--run NAME]... \\\n"
               "          [--spec FILE [--sweep dotted.path=v1,v2,...]...] \\\n"
               "          [--snapshot BASE] [--restore FILE]\n"
               "       %s report SPANS.jsonl [SPANS.jsonl ...]\n"
               "       %s convert IN OUT    # flight trace .jsonl <-> .frbin\n",
               argv0, argv0, argv0);
  return 2;
}

std::size_t cellCount(const scenario::ScenarioEntry& entry) {
  return entry.specs ? entry.specs().size() : 1;
}

/// Spec-driven entries with at least one TCP-flow workload honor the
/// --fidelity override (pinned flows aside); native entries drive their own
/// simulations and may pin fidelity throughout.
bool fluidCapable(const scenario::ScenarioEntry& entry) {
  if (!entry.specs) return false;
  for (const auto& spec : entry.specs()) {
    for (const auto& w : spec.workloads) {
      if (scenario::workloadHasFidelity(w.kind)) return true;
    }
  }
  return false;
}

void listCatalog() {
  std::printf("%-28s %-10s %-7s %s\n", "scenario", "family", "cells", "title");
  for (const auto& entry : ScenarioRegistry::builtin().entries()) {
    std::printf("%-28s %-10s %-7zu %s%s%s\n", entry.name.c_str(), entry.family.c_str(),
                cellCount(entry), entry.title.c_str(), entry.native ? "  [native]" : "",
                fluidCapable(entry) ? "  [fluid-capable]" : "");
  }
}

void dumpCatalog() {
  Json doc = Json::object();
  doc.set("schema", "scidmz.scenario.catalog.v1");
  Json scenarios = Json::array();
  for (const auto& entry : ScenarioRegistry::builtin().entries()) {
    Json e = Json::object();
    e.set("name", entry.name);
    e.set("family", entry.family);
    e.set("title", entry.title);
    e.set("paper_ref", entry.paperRef);
    e.set("sweep", entry.sweepName);
    e.set("native", entry.native != nullptr);
    e.set("cells", static_cast<std::uint64_t>(cellCount(entry)));
    if (entry.specs) {
      Json specs = Json::array();
      for (const auto& spec : entry.specs()) specs.push(spec.toJson());
      e.set("specs", std::move(specs));
    }
    scenarios.push(std::move(e));
  }
  doc.set("scenarios", std::move(scenarios));
  std::printf("%s\n", doc.pretty().c_str());
}

/// Set `doc`'s member at a dotted path ("workloads.0.tcp.bufBytes"),
/// creating nothing: every intermediate must already exist so typos fail
/// loudly instead of silently adding ignored keys.
void setPath(Json& doc, const std::string& path, Json value) {
  Json* node = &doc;
  std::size_t begin = 0;
  std::vector<std::string> segments;
  while (begin <= path.size()) {
    const std::size_t dot = path.find('.', begin);
    segments.push_back(path.substr(begin, dot == std::string::npos ? dot : dot - begin));
    if (dot == std::string::npos) break;
    begin = dot + 1;
  }
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string& seg = segments[i];
    if (node->isArray()) {
      const std::size_t index = std::strtoull(seg.c_str(), nullptr, 10);
      if (index >= node->size()) {
        throw scenario::JsonError("--sweep path \"" + path + "\": index " + seg +
                                  " out of range");
      }
      node = const_cast<Json*>(&node->at(index));
    } else if (node->isObject() && node->contains(seg)) {
      node = &(*node)[seg];
    } else {
      throw scenario::JsonError("--sweep path \"" + path + "\": no member \"" + seg + "\"");
    }
  }
  const std::string& leaf = segments.back();
  if (node->isArray()) {
    const std::size_t index = std::strtoull(leaf.c_str(), nullptr, 10);
    if (index >= node->size()) {
      throw scenario::JsonError("--sweep path \"" + path + "\": index " + leaf +
                                " out of range");
    }
    const_cast<Json&>(node->at(index)) = std::move(value);
  } else {
    node->set(leaf, std::move(value));
  }
}

/// A sweep operand is JSON when it parses as JSON (1500, 1e-4, true,
/// "quoted"), a bare string otherwise (htcp, random).
Json parseSweepValue(const std::string& text) {
  try {
    return Json::parse(text);
  } catch (const scenario::JsonError&) {
    return Json(text);
  }
}

struct SweepArg {
  std::string path;
  std::vector<std::string> values;
};

int runSpecFile(const std::string& file, const std::vector<SweepArg>& sweeps) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "scidmz_run: cannot read %s\n", file.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Json base = Json::parse(buffer.str());
  // Expand the sweep grid: each --sweep multiplies the cell list.
  std::vector<Json> docs{base};
  for (const auto& sweep : sweeps) {
    std::vector<Json> expanded;
    for (const auto& doc : docs) {
      for (const auto& value : sweep.values) {
        Json next = doc;
        setPath(next, sweep.path, parseSweepValue(value));
        expanded.push_back(std::move(next));
      }
    }
    docs = std::move(expanded);
  }

  std::vector<ScenarioSpec> specs;
  specs.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    auto spec = ScenarioSpec::fromJson(docs[i]);
    if (docs.size() > 1) spec.name += "#" + std::to_string(i);
    specs.push_back(std::move(spec));
  }

  const std::string benchName = specs[0].name.substr(0, specs[0].name.find('#'));
  bench::header((benchName + ": ad-hoc scenario spec").c_str(), file.c_str());
  const auto outcomes = scenario::runSpecs(specs, "spec", benchName);

  bench::JsonTable table(benchName, "ad-hoc scenario spec run", file,
                         {"cell", "name", "metric", "value"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    bench::row("cell %zu: %s", i, o.spec->name.c_str());
    for (const auto& [key, value] : o.result.metrics) {
      std::string text;
      scenario::appendJsonNumber(text, value);
      bench::row("  %-36s %s", key.c_str(), text.c_str());
      table.addRow({static_cast<unsigned long long>(i), o.spec->name, key, value});
    }
  }
  table.write();
  return 0;
}

/// `--snapshot BASE`: run the canonical demo cell to the snapshot point,
/// write the scidmz.snap.v1 blob, then continue to the end and print the
/// reference table a later --restore must reproduce byte-for-byte.
int runSnapshotDemo(const std::string& base) {
  scenario::DemoCell cell;
  cell.scenario().simulator.runFor(sim::Duration::milliseconds(300));
  std::string error;
  if (!scenario::saveSnapshotFile(cell.scenario(), base, &error)) {
    std::fprintf(stderr, "scidmz_run: %s\n", error.c_str());
    return 1;
  }
  std::printf("snapshot written: %s (at t=0.3s)\n", base.c_str());
  cell.scenario().simulator.runFor(sim::Duration::milliseconds(700));
  std::printf("--- uninterrupted run to t=1.0s ---\n%s", cell.table().c_str());
  return 0;
}

/// `--restore FILE`: rebuild the demo cell, overlay the snapshot, continue
/// to the same end point. The printed table must match --snapshot's.
int runRestoreDemo(const std::string& file) {
  scenario::DemoCell cell;
  std::string error;
  if (!scenario::restoreSnapshotFile(cell.scenario(), file, &error)) {
    std::fprintf(stderr, "scidmz_run: %s\n", error.c_str());
    return 1;
  }
  std::printf("snapshot restored: %s (t=%.3fs)\n", file.c_str(),
              static_cast<double>(cell.scenario().simulator.now().ns()) * 1e-9);
  cell.scenario().simulator.runFor(sim::Duration::milliseconds(700));
  std::printf("--- restored run to t=1.0s ---\n%s", cell.table().c_str());
  return 0;
}

// --- `scidmz_run convert` — flight trace .jsonl <-> .frbin ----------------

std::uint32_t parseIp(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  std::sscanf(text.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d);
  return (a << 24) | (b << 16) | (c << 8) | d;
}

bool kindFromString(const std::string& text, telemetry::FlightEventKind& out) {
  using K = telemetry::FlightEventKind;
  for (const K k : {K::kEnqueue, K::kDequeue, K::kDrop, K::kLinkLoss, K::kRetransmit,
                    K::kDeliver}) {
    if (text == telemetry::toString(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

int convertTrace(const std::string& inPath, const std::string& outPath) {
  std::ifstream in(inPath, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "scidmz_run: cannot read %s\n", inPath.c_str());
    return 1;
  }
  telemetry::FlightRecorder recorder(1);
  // Sniff the format: binary blobs start with the frbin magic.
  char head[16] = {};
  in.read(head, sizeof head);
  in.clear();
  in.seekg(0);
  const bool binaryInput = std::memcmp(head, "scidmz.frbin.v1", 15) == 0;
  if (binaryInput) {
    if (!recorder.importBinary(in)) {
      std::fprintf(stderr, "scidmz_run: %s is not a valid scidmz.frbin.v1 blob\n",
                   inPath.c_str());
      return 1;
    }
  } else {
    // JSONL input (schema scidmz.trace.v1, one event per line).
    std::string line;
    std::size_t lineNo = 0;
    std::vector<telemetry::FlightEvent> events;
    while (std::getline(in, line)) {
      ++lineNo;
      if (line.empty()) continue;
      try {
        const Json doc = Json::parse(line);
        telemetry::FlightEvent e;
        e.at = sim::SimTime::fromNs(static_cast<std::int64_t>(doc.get("t_ns").asNumber()));
        if (!kindFromString(doc.get("ev").asString(), e.kind)) {
          throw scenario::JsonError("unknown event kind \"" + doc.get("ev").asString() + "\"");
        }
        e.point = recorder.internPoint(doc.get("point").asString());
        e.packetId = static_cast<std::uint64_t>(doc.get("pkt").asNumber());
        e.flow.src = parseIp(doc.get("src").asString());
        e.flow.dst = parseIp(doc.get("dst").asString());
        e.flow.srcPort = static_cast<std::uint16_t>(doc.get("sport").asNumber());
        e.flow.dstPort = static_cast<std::uint16_t>(doc.get("dport").asNumber());
        const std::string& proto = doc.get("proto").asString();
        e.flow.proto = proto == "tcp" ? 6 : proto == "udp" ? 17 : 0;
        e.bytes = static_cast<std::uint32_t>(doc.get("bytes").asNumber());
        e.aux = static_cast<std::uint64_t>(doc.get("seq").asNumber());
        e.aux2 = static_cast<std::uint64_t>(doc.get("depth").asNumber());
        events.push_back(e);
      } catch (const scenario::JsonError& err) {
        std::fprintf(stderr, "scidmz_run: %s:%zu: %s\n", inPath.c_str(), lineNo, err.what());
        return 1;
      }
    }
    recorder.setCapacity(events.empty() ? 1 : events.size());
    for (const auto& e : events) recorder.record(e);
  }

  std::ofstream out(outPath, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "scidmz_run: cannot write %s\n", outPath.c_str());
    return 1;
  }
  // Output format: the opposite of the input (frbin in -> JSONL out).
  if (binaryInput) {
    recorder.exportJsonl(out);
  } else {
    recorder.exportBinary(out);
  }
  if (!out) {
    std::fprintf(stderr, "scidmz_run: short write to %s\n", outPath.c_str());
    return 1;
  }
  std::printf("%s -> %s: %zu events, %zu emit points (%s)\n", inPath.c_str(), outPath.c_str(),
              recorder.size(), recorder.pointCount(),
              binaryInput ? "frbin -> jsonl" : "jsonl -> frbin");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `scidmz_run convert IN OUT` — offline trace format conversion.
  if (argc >= 2 && std::strcmp(argv[1], "convert") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "scidmz_run: convert needs IN and OUT paths\n");
      return usage(argv[0]);
    }
    return convertTrace(argv[2], argv[3]);
  }
  // `scidmz_run report FILE...` — offline analysis, no simulation.
  if (argc >= 2 && std::strcmp(argv[1], "report") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "scidmz_run: report needs at least one spans.jsonl file\n");
      return usage(argv[0]);
    }
    std::vector<std::string> files(argv + 2, argv + argc);
    return scenario::printCriticalPathReport(files, std::cout) ? 0 : 1;
  }

  bool list = false;
  bool dump = false;
  std::vector<std::string> runs;
  std::string specFile;
  std::vector<SweepArg> sweeps;
  std::string outDir;
  std::string snapshotBase;
  std::string restoreFile;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto operand = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scidmz_run: %s needs %s\n", arg.c_str(), what);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--run") {
      runs.emplace_back(operand("a scenario name"));
    } else if (arg == "--spec") {
      specFile = operand("a spec file");
    } else if (arg == "--sweep") {
      const std::string text = operand("dotted.path=v1,v2,...");
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
        std::fprintf(stderr, "scidmz_run: --sweep wants dotted.path=v1,v2,... (got \"%s\")\n",
                     text.c_str());
        return usage(argv[0]);
      }
      SweepArg sweep;
      sweep.path = text.substr(0, eq);
      std::size_t begin = eq + 1;
      while (begin <= text.size()) {
        const std::size_t comma = text.find(',', begin);
        sweep.values.push_back(
            text.substr(begin, comma == std::string::npos ? comma : comma - begin));
        if (comma == std::string::npos) break;
        begin = comma + 1;
      }
      sweeps.push_back(std::move(sweep));
    } else if (arg == "--out") {
      outDir = operand("a directory");
    } else if (arg == "--fidelity" || arg.rfind("--fidelity=", 0) == 0) {
      const std::string text =
          arg == "--fidelity" ? operand("packet|fluid|auto") : arg.substr(std::strlen("--fidelity="));
      const auto parsed = net::parseFlowFidelity(text);
      if (!parsed) {
        std::fprintf(stderr, "scidmz_run: --fidelity wants packet|fluid|auto (got \"%s\")\n",
                     text.c_str());
        return usage(argv[0]);
      }
      net::setProcessFidelityOverride(*parsed);
    } else if (arg == "--domains" || arg.rfind("--domains=", 0) == 0) {
      const std::string text =
          arg == "--domains" ? operand("a domain count") : arg.substr(std::strlen("--domains="));
      char* end = nullptr;
      const long n = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || n < 1 || n > 1024) {
        std::fprintf(stderr, "scidmz_run: --domains wants an integer in [1, 1024] (got \"%s\")\n",
                     text.c_str());
        return usage(argv[0]);
      }
      scenario::setProcessDomainsOverride(static_cast<int>(n));
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      const std::string base =
          arg == "--trace" ? operand("an output base path") : arg.substr(std::strlen("--trace="));
      scenario::setTraceOutput(base);
    } else if (arg == "--profile" || arg.rfind("--profile=", 0) == 0) {
      const std::string base = arg == "--profile" ? operand("an output base path")
                                                  : arg.substr(std::strlen("--profile="));
      scenario::setProfileOutput(base);
    } else if (arg == "--snapshot" || arg.rfind("--snapshot=", 0) == 0) {
      snapshotBase =
          arg == "--snapshot" ? operand("an output path") : arg.substr(std::strlen("--snapshot="));
    } else if (arg == "--restore" || arg.rfind("--restore=", 0) == 0) {
      restoreFile =
          arg == "--restore" ? operand("a snapshot file") : arg.substr(std::strlen("--restore="));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "scidmz_run: unknown argument \"%s\"\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!list && !dump && runs.empty() && specFile.empty() && snapshotBase.empty() &&
      restoreFile.empty()) {
    return usage(argv[0]);
  }
  if (!sweeps.empty() && specFile.empty()) {
    std::fprintf(stderr, "scidmz_run: --sweep only applies to --spec runs\n");
    return usage(argv[0]);
  }

  if (!outDir.empty()) {
    // Route artifacts under --out; explicit SCIDMZ_* env vars still win.
    ::setenv("SCIDMZ_TABLE_JSON_DIR", outDir.c_str(), /*overwrite=*/0);
    ::setenv("SCIDMZ_BENCH_JSON", (outDir + "/BENCH_sim.json").c_str(), /*overwrite=*/0);
  }

  try {
    if (list) listCatalog();
    if (dump) dumpCatalog();
    if (!snapshotBase.empty()) {
      if (const int rc = runSnapshotDemo(snapshotBase); rc != 0) return rc;
    }
    if (!restoreFile.empty()) {
      if (const int rc = runRestoreDemo(restoreFile); rc != 0) return rc;
    }
    for (const auto& name : runs) {
      if (const int rc = scenario::runScenarioMain(name); rc != 0) return rc;
    }
    if (!specFile.empty()) {
      if (const int rc = runSpecFile(specFile, sweeps); rc != 0) return rc;
    }
  } catch (const scenario::JsonError& e) {
    std::fprintf(stderr, "scidmz_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
